// verify_fuzz: long-running randomized verification driver.
//
// Continuously generates executions of a chosen snapshot implementation
// under randomized simulator schedules (and optionally native stressed
// threads), checks every history against the Shrinking Lemma, and — on
// the first violation — prints the seed and the full history in the
// lin::dump format so it can be replayed.
//
// Chaos mode layers crash-stop fault injection on top (simulator
// iterations only): every iteration derives a random FaultPlan from its
// seed (--crash-prob, --stall permille; --chaos picks defaults), or
// replays one fixed plan (--plan, see docs/fault_model.md for the
// grammar). Histories with crashed operations are checked with the
// crash-aware checkers, and a watchdog thread turns a hung run — native
// or simulated (a "hang:" plan wedges the scheduler on purpose) — into
// a graceful exit with a replayable artifact instead of a stuck CI job.
//
// The protocol-conformance analyzer (src/analysis) observes every
// execution: the SWMR ownership checker plus, on native runs, the
// vector-clock race detector. With --conformance, any finding is
// treated exactly like a linearizability violation — the report is
// printed, the artifact gains a parseable conformance dump, and the
// exit code is 1. A watchdog trip ALWAYS dumps the conformance report
// as of the hang (whether or not --conformance gates findings), so a
// wedged run still yields analyzable data.
//
// --impl net fuzzes the composite register built over the networked
// substrate (src/net): every base cell is an ABD quorum-replicated
// register on a per-iteration SimNet of 2f+1 replicas. Chaos mode then
// derives a per-iteration NetFaultPlan (message loss at --loss permille
// plus random delay/dup/reorder, partitions at --net-partition, replica
// crashes at --net-crash, crash–recovery cycles at --net-recover), or
// replays one fixed plan (--net-plan, see src/net/net_plan.h for the
// grammar). A quorum-starved operation degrades to Unavailable, which
// the workload records as a pending (crash-like) op — checked with the
// crash-aware checkers, never hung.
//
// The durability auditor (src/net/durable_state.h) watches every net
// iteration: a replica that acks before persisting or serves forgotten
// state is a finding, merged into the conformance report. --amnesia
// ack|rejoin seeds exactly those mutants (certification that the
// checkers catch them); the replay line carries the flag.
//
// Every artifact ends with a "# replay: verify_fuzz ..." line carrying
// the failing seed and the concrete plan(s) in force, so reproducing a
// finding is one copy-paste.
//
// Usage:
//   verify_fuzz [--impl anderson|afek|unbounded|doublecollect|fullstack
//                       |seqlock|mutex|mw|net]
//               [--components N] [--readers N] [--iters N] [--seed N]
//               [--ops N] [--native] [--witness] [--stats] [--conformance]
//               [--chaos] [--crash-prob PERMILLE] [--stall PERMILLE]
//               [--plan SPEC] [--out FILE] [--watchdog SECONDS]
//               [--net-f F] [--loss PERMILLE] [--net-partition PERMILLE]
//               [--net-crash PERMILLE] [--net-recover PERMILLE]
//               [--net-plan SPEC] [--amnesia none|ack|rejoin]
//
// --impl mw fuzzes the multi-writer reduction (native threads, 3
// processes). Exit codes: 0 = all iterations clean; 1 = violation found
// (failing seed printed, artifact written to --out); 2 = watchdog
// timeout (hang; artifact written to --out); 64 = usage error.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/race.h"
#include "core/multi_writer.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"
#include "lin/dump.h"
#include "lin/shrinking_checker.h"
#include "lin/stats.h"
#include "lin/witness.h"
#include "lin/workload.h"
#include "net/net_cell.h"
#include "sched/policy.h"
#include "util/rng.h"
#include "verify_common.h"

namespace {

using compreg::core::Snapshot;
using compreg::tools::Artifact;
using compreg::tools::kExitUsage;
using compreg::tools::kExitViolation;
using compreg::tools::LiveState;
using compreg::tools::make_impl;
using compreg::tools::ReplayFn;
using compreg::tools::Watchdog;
using compreg::tools::write_artifact;

}  // namespace

int main(int argc, char** argv) {
  std::string impl = "anderson";
  int components = 3;
  int readers = 2;
  std::uint64_t iters = 200;
  std::uint64_t seed = 1;
  int ops = 10;
  bool native = false;
  bool witness = false;
  bool stats = false;
  bool conformance = false;
  bool chaos = false;
  long crash_permille = -1;  // -1 = not set
  long stall_permille = -1;
  std::string plan_text;
  unsigned watchdog_sec = 30;
  int net_f = 1;
  long loss_permille = -1;  // -1 = not set
  long net_partition_permille = -1;
  long net_crash_permille = -1;
  long net_recover_permille = -1;
  std::string net_plan_text;
  std::string amnesia_text = "none";
  Artifact artifact;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--impl")) {
      impl = next("--impl");
    } else if (!std::strcmp(argv[i], "--components")) {
      components = std::atoi(next("--components"));
    } else if (!std::strcmp(argv[i], "--readers")) {
      readers = std::atoi(next("--readers"));
    } else if (!std::strcmp(argv[i], "--iters")) {
      iters = std::strtoull(next("--iters"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--ops")) {
      ops = std::atoi(next("--ops"));
    } else if (!std::strcmp(argv[i], "--native")) {
      native = true;
    } else if (!std::strcmp(argv[i], "--witness")) {
      witness = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      stats = true;
    } else if (!std::strcmp(argv[i], "--conformance")) {
      conformance = true;
    } else if (!std::strcmp(argv[i], "--chaos")) {
      chaos = true;
    } else if (!std::strcmp(argv[i], "--crash-prob")) {
      crash_permille = std::atol(next("--crash-prob"));
    } else if (!std::strcmp(argv[i], "--stall")) {
      stall_permille = std::atol(next("--stall"));
    } else if (!std::strcmp(argv[i], "--plan")) {
      plan_text = next("--plan");
    } else if (!std::strcmp(argv[i], "--net-f")) {
      net_f = std::atoi(next("--net-f"));
    } else if (!std::strcmp(argv[i], "--loss")) {
      loss_permille = std::atol(next("--loss"));
    } else if (!std::strcmp(argv[i], "--net-partition")) {
      net_partition_permille = std::atol(next("--net-partition"));
    } else if (!std::strcmp(argv[i], "--net-crash")) {
      net_crash_permille = std::atol(next("--net-crash"));
    } else if (!std::strcmp(argv[i], "--net-recover")) {
      net_recover_permille = std::atol(next("--net-recover"));
    } else if (!std::strcmp(argv[i], "--net-plan")) {
      net_plan_text = next("--net-plan");
    } else if (!std::strcmp(argv[i], "--amnesia")) {
      amnesia_text = next("--amnesia");
    } else if (!std::strcmp(argv[i], "--out")) {
      artifact.path = next("--out");
    } else if (!std::strcmp(argv[i], "--watchdog")) {
      watchdog_sec = static_cast<unsigned>(std::atoi(next("--watchdog")));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return kExitUsage;
    }
  }
  if (native && (impl == "fullstack" || impl == "net")) {
    std::fprintf(stderr,
                 "%s is simulator-only (its primitives rely on "
                 "serialized steps)\n",
                 impl.c_str());
    return kExitUsage;
  }
  if (impl != "net" &&
      (loss_permille >= 0 || net_partition_permille >= 0 ||
       net_crash_permille >= 0 || net_recover_permille >= 0 ||
       !net_plan_text.empty() || net_f != 1 || amnesia_text != "none")) {
    std::fprintf(stderr,
                 "network flags (--net-f/--loss/--net-partition/"
                 "--net-crash/--net-recover/--net-plan/--amnesia) "
                 "require --impl net\n");
    return kExitUsage;
  }
  if (impl == "net" && net_f < 1) {
    std::fprintf(stderr, "--net-f must be >= 1 (2f+1 replicas)\n");
    return kExitUsage;
  }
  compreg::net::Amnesia amnesia = compreg::net::Amnesia::kNone;
  if (amnesia_text == "ack") {
    amnesia = compreg::net::Amnesia::kAckBeforePersist;
  } else if (amnesia_text == "rejoin") {
    amnesia = compreg::net::Amnesia::kBlankRejoin;
  } else if (amnesia_text != "none") {
    std::fprintf(stderr, "--amnesia takes none|ack|rejoin\n");
    return kExitUsage;
  }
  if (chaos) {
    if (impl == "net") {
      // Network chaos: faults live in the transport, not the processes,
      // unless process faults are explicitly requested on top.
      if (loss_permille < 0) loss_permille = 100;  // 10% message loss
      if (net_partition_permille < 0) net_partition_permille = 150;
      if (net_crash_permille < 0) net_crash_permille = 150;
      if (net_recover_permille < 0) net_recover_permille = 150;
    } else {
      if (crash_permille < 0) crash_permille = 350;
      if (stall_permille < 0) stall_permille = 250;
    }
  }
  if (crash_permille < 0) crash_permille = 0;
  if (stall_permille < 0) stall_permille = 0;
  if (loss_permille < 0) loss_permille = 0;
  if (net_partition_permille < 0) net_partition_permille = 0;
  if (net_crash_permille < 0) net_crash_permille = 0;
  if (net_recover_permille < 0) net_recover_permille = 0;
  if (loss_permille > 1000 || net_partition_permille > 1000 ||
      net_crash_permille > 1000 || net_recover_permille > 1000) {
    std::fprintf(stderr, "permille values cap at 1000\n");
    return kExitUsage;
  }
  const bool inject_faults =
      crash_permille > 0 || stall_permille > 0 || !plan_text.empty();
  if (inject_faults && (native || impl == "mw")) {
    std::fprintf(stderr,
                 "fault injection (--chaos/--crash-prob/--stall/--plan) "
                 "requires the deterministic simulator (drop --native)\n");
    return kExitUsage;
  }
  std::optional<compreg::fault::FaultPlan> fixed_plan;
  if (!plan_text.empty()) {
    fixed_plan = compreg::fault::FaultPlan::parse(plan_text);
    if (!fixed_plan) {
      std::fprintf(stderr, "unparsable --plan '%s'\n", plan_text.c_str());
      return kExitUsage;
    }
  }
  std::optional<compreg::net::NetFaultPlan> fixed_net_plan;
  if (!net_plan_text.empty()) {
    fixed_net_plan = compreg::net::NetFaultPlan::parse(net_plan_text);
    if (!fixed_net_plan) {
      std::fprintf(stderr, "unparsable --net-plan '%s'\n",
                   net_plan_text.c_str());
      return kExitUsage;
    }
  }
  const bool inject_net_faults =
      impl == "net" && (loss_permille > 0 || net_partition_permille > 0 ||
                        net_crash_permille > 0 || net_recover_permille > 0 ||
                        fixed_net_plan.has_value());

  {
    std::ostringstream cfg;
    cfg << "impl=" << impl << " C=" << components << " R=" << readers
        << " iters=" << iters << " base_seed=" << seed << " ops=" << ops
        << " mode=" << ((native || impl == "mw") ? "native" : "sim");
    if (impl == "net") {
      cfg << " f=" << net_f << " replicas=" << (2 * net_f + 1);
      if (inject_net_faults) {
        cfg << " loss=" << loss_permille
            << " net-partition=" << net_partition_permille
            << " net-crash=" << net_crash_permille
            << " net-recover=" << net_recover_permille;
        if (fixed_net_plan) cfg << " net-plan=" << fixed_net_plan->to_string();
      }
      if (amnesia != compreg::net::Amnesia::kNone) {
        cfg << " amnesia=" << amnesia_text;
      }
    }
    if (inject_faults) {
      cfg << " crash-prob=" << crash_permille << " stall=" << stall_permille;
      if (fixed_plan) cfg << " plan=" << fixed_plan->to_string();
    }
    if (conformance) cfg << " +conformance";
    artifact.config_line = cfg.str();
  }
  std::printf("verify_fuzz: %s%s\n", artifact.config_line.c_str(),
              witness ? " +witness" : "");

  // The ownership checker runs on every mode; the happens-before race
  // detector only on free-running threads (the simulator serializes
  // execution, so racing there is what the ownership rules cover).
  compreg::analysis::AnalysisSession session(
      /*detect_races=*/native || impl == "mw");
  compreg::lin::ConformanceCounters conf_total;

  // One copy-pasteable line that replays a single iteration. The
  // concrete plans are baked in, so chaos derivation flags drop out.
  const ReplayFn make_replay = [&](std::uint64_t s, const std::string& p,
                                   const std::string& np,
                                   const std::string& /*schedule*/) {
    std::ostringstream cmd;
    cmd << "verify_fuzz --impl " << impl << " --components " << components
        << " --readers " << readers << " --ops " << ops << " --seed " << s
        << " --iters 1";
    if (native) cmd << " --native";
    if (conformance) cmd << " --conformance";
    if (witness) cmd << " --witness";
    if (impl == "net") cmd << " --net-f " << net_f;
    if (amnesia != compreg::net::Amnesia::kNone) {
      cmd << " --amnesia " << amnesia_text;
    }
    if (!p.empty()) cmd << " --plan '" << p << "'";
    if (!np.empty()) cmd << " --net-plan '" << np << "'";
    return cmd.str();
  };

  std::atomic<std::uint64_t> progress{0};
  LiveState live;
  live.set(seed, plan_text, net_plan_text);
  // The watchdog always dumps the analyzer's view of the hung iteration,
  // whether or not --conformance gates findings.
  Watchdog watchdog(watchdog_sec, artifact, progress, live, make_replay,
                    [&session] { return session.report().dump(); });

  const bool sim_mode = !native && impl != "mw";
  std::uint64_t pending_ops_seen = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t it_seed = seed + i;
    compreg::lin::History h;
    compreg::fault::FaultPlan plan;
    compreg::net::NetFaultPlan net_plan;
    if (sim_mode && inject_faults) {
      if (fixed_plan) {
        plan = *fixed_plan;
      } else {
        // Derive this iteration's plan from its seed alone, so
        // re-running with --seed <it_seed> --iters 1 replays it.
        compreg::Rng plan_rng(it_seed ^ 0xfa0175ab5eedull);
        const std::uint64_t est_points =
            static_cast<std::uint64_t>(ops) * 16 + 8;
        plan = compreg::fault::FaultPlan::random(
            plan_rng, components + readers, est_points,
            static_cast<unsigned>(crash_permille),
            static_cast<unsigned>(stall_permille));
      }
    }
    if (inject_net_faults) {
      if (fixed_net_plan) {
        net_plan = *fixed_net_plan;
      } else {
        compreg::Rng net_rng(it_seed ^ 0x6e65745f5eedull);
        // Network steps dwarf schedule points: each base-register op is
        // a broadcast plus a poll loop, and the composite construction
        // issues many base ops per operation.
        const std::uint64_t est_net_steps =
            static_cast<std::uint64_t>(ops) * 400;
        net_plan = compreg::net::NetFaultPlan::random(
            net_rng, 2 * net_f + 1, est_net_steps,
            static_cast<unsigned>(loss_permille),
            static_cast<unsigned>(net_partition_permille),
            static_cast<unsigned>(net_crash_permille),
            static_cast<unsigned>(net_recover_permille));
      }
    }
    live.set(it_seed, plan.empty() ? std::string() : plan.to_string(),
             net_plan.empty() ? std::string() : net_plan.to_string());
    // Installed after construction (registers label only their
    // operational accesses) and removed before report() below. The
    // analyzer observes EVERY iteration — not just under --conformance —
    // so a watchdog artifact always carries the report of the hang;
    // --conformance only gates whether findings fail the run.
    session.reset();
    // Durability-auditor findings for this iteration (net only): the
    // fabric dies with its scope below, so its report is captured there
    // and merged into the conformance report after the run.
    compreg::analysis::AnalysisReport durrep;
    std::optional<compreg::sched::ScopedAccessObserver> observe;
    observe.emplace(&session);
    if (impl == "mw") {
      compreg::core::MultiWriterSnapshot<std::uint64_t> snap(
          components, /*processes=*/3, readers, 0);
      compreg::lin::MwWorkloadConfig cfg;
      cfg.writes_per_process = ops;
      cfg.scans_per_reader = ops;
      cfg.stress_permille = 150;
      cfg.seed = it_seed;
      h = compreg::lin::run_native_workload_mw(snap, cfg);
    } else if (native) {
      auto snap = make_impl(impl, components, readers);
      if (!snap) {
        std::fprintf(stderr, "unknown impl '%s'\n", impl.c_str());
        return kExitUsage;
      }
      compreg::lin::WorkloadConfig cfg;
      cfg.writes_per_writer = ops;
      cfg.scans_per_reader = ops;
      cfg.stress_permille = 150;
      cfg.seed = it_seed;
      h = compreg::lin::run_native_workload(*snap, cfg);
    } else {
      // Declared before the snapshot so the cells (which reference the
      // fabric's SimNet) are destroyed first.
      std::optional<compreg::net::ScopedNetFabric> fab;
      if (impl == "net") {
        compreg::net::NetConfig ncfg;
        ncfg.f = net_f;
        ncfg.amnesia = amnesia;
        fab.emplace(ncfg, net_plan, it_seed ^ 0x51b2e75eedull);
      }
      auto snap = make_impl(impl, components, readers);
      if (!snap) {
        std::fprintf(stderr, "unknown impl '%s'\n", impl.c_str());
        return kExitUsage;
      }
      compreg::sched::RandomPolicy policy(it_seed);
      compreg::lin::WorkloadConfig cfg;
      cfg.writes_per_writer = ops;
      cfg.scans_per_reader = ops;
      if (inject_faults) {
        h = compreg::fault::run_sim_workload_with_faults(*snap, policy, cfg,
                                                         plan);
      } else {
        h = compreg::lin::run_sim_workload(*snap, policy, cfg);
      }
      if (fab) durrep = fab->fabric().net().durable().report();
    }
    observe.reset();
    const auto full_dump = [&] {
      compreg::analysis::AnalysisReport r = session.report();
      r.merge_findings(durrep);
      return r.dump();
    };
    if (conformance) {
      compreg::analysis::AnalysisReport creport = session.report();
      creport.merge_findings(durrep);
      const compreg::lin::ConformanceCounters& cc = creport.counters;
      conf_total.cells += cc.cells;
      conf_total.swmr_cells += cc.swmr_cells;
      conf_total.swsr_cells += cc.swsr_cells;
      conf_total.mrmw_cells += cc.mrmw_cells;
      conf_total.reads += cc.reads;
      conf_total.writes += cc.writes;
      conf_total.findings += creport.findings.size();
      if (stats && i == 0) {
        std::printf("  first conformance: %s\n", cc.summary().c_str());
      }
      if (!creport.ok()) {
        std::printf("CONFORMANCE FINDINGS at seed %llu:\n%s",
                    static_cast<unsigned long long>(it_seed),
                    creport.text().c_str());
        if (!plan.empty()) {
          std::printf("fault plan: %s\n", plan.to_string().c_str());
        }
        if (!net_plan.empty()) {
          std::printf("net fault plan: %s\n", net_plan.to_string().c_str());
        }
        write_artifact(artifact, "conformance findings", it_seed,
                       plan.to_string(), net_plan.to_string(),
                       /*schedule=*/std::string(),
                       make_replay(it_seed, plan.to_string(),
                                   net_plan.to_string(), std::string()),
                       creport.findings.front().to_string(), &h,
                       creport.dump());
        return kExitViolation;
      }
    }
    const compreg::lin::HistoryStats hs = compreg::lin::compute_stats(h);
    pending_ops_seen += hs.pending_writes + hs.pending_reads;
    if (stats && i == 0) {
      std::printf("  first history: %s\n", hs.summary().c_str());
    }
    const compreg::lin::CheckResult result =
        compreg::lin::check_shrinking_lemma(h);
    if (!result.ok) {
      std::printf("VIOLATION at seed %llu: %s\n",
                  static_cast<unsigned long long>(it_seed),
                  result.violation.c_str());
      if (!plan.empty()) {
        std::printf("fault plan: %s\n", plan.to_string().c_str());
      }
      if (!net_plan.empty()) {
        std::printf("net fault plan: %s\n", net_plan.to_string().c_str());
      }
      std::printf("# replayable history follows\n");
      compreg::lin::dump_history(h, std::cout);
      write_artifact(artifact, "violation", it_seed, plan.to_string(),
                     net_plan.to_string(), /*schedule=*/std::string(),
                     make_replay(it_seed, plan.to_string(),
                                 net_plan.to_string(), std::string()),
                     result.violation, &h, full_dump());
      return kExitViolation;
    }
    if (witness) {
      const compreg::lin::Witness w = compreg::lin::build_linearization(h);
      if (!w.ok) {
        std::printf("WITNESS FAILURE at seed %llu: %s\n",
                    static_cast<unsigned long long>(it_seed),
                    w.error.c_str());
        compreg::lin::dump_history(h, std::cout);
        write_artifact(artifact, "witness failure", it_seed,
                       plan.to_string(), net_plan.to_string(),
                       /*schedule=*/std::string(),
                       make_replay(it_seed, plan.to_string(),
                                   net_plan.to_string(), std::string()),
                       w.error, &h, full_dump());
        return kExitViolation;
      }
    }
    progress.fetch_add(1);
    if ((i + 1) % 50 == 0) {
      std::printf("  %llu/%llu clean\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(iters));
    }
  }
  if (inject_faults || inject_net_faults) {
    std::printf("all %llu executions linearizable (%llu crashed/unavailable "
                "ops recorded pending)\n",
                static_cast<unsigned long long>(iters),
                static_cast<unsigned long long>(pending_ops_seen));
  } else {
    std::printf("all %llu executions linearizable\n",
                static_cast<unsigned long long>(iters));
  }
  if (conformance) {
    std::printf("conformance totals: %s\n", conf_total.summary().c_str());
  }
  return 0;
}
