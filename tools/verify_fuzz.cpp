// verify_fuzz: long-running randomized verification driver.
//
// Continuously generates executions of a chosen snapshot implementation
// under randomized simulator schedules (and optionally native stressed
// threads), checks every history against the Shrinking Lemma, and — on
// the first violation — prints the seed and the full history in the
// lin::dump format so it can be replayed.
//
// Usage:
//   verify_fuzz [--impl anderson|afek|unbounded|doublecollect|fullstack|mw]
//               [--components N] [--readers N] [--iters N] [--seed N]
//               [--ops N] [--native] [--witness] [--stats]
//
// --impl mw fuzzes the multi-writer reduction (native threads, 3
// processes). Exit code 0 = all iterations clean; 1 = violation found.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/afek_snapshot.h"
#include "baselines/double_collect.h"
#include "baselines/unbounded_helping.h"
#include "core/composite_register.h"
#include "core/multi_writer.h"
#include "lin/dump.h"
#include "lin/shrinking_checker.h"
#include "lin/stats.h"
#include "lin/witness.h"
#include "lin/workload.h"
#include "sched/policy.h"
#include "theory/theory_cell.h"

namespace {

using compreg::core::Snapshot;

std::unique_ptr<Snapshot<std::uint64_t>> make_impl(const std::string& name,
                                                   int c, int r) {
  if (name == "anderson") {
    return std::make_unique<compreg::core::CompositeRegister<std::uint64_t>>(
        c, r, 0);
  }
  if (name == "fullstack") {
    return std::make_unique<compreg::core::CompositeRegister<
        std::uint64_t, compreg::theory::TheoryCell,
        compreg::theory::TheoryCell>>(c, r, 0);
  }
  if (name == "afek") {
    return std::make_unique<compreg::baselines::AfekSnapshot<std::uint64_t>>(
        c, r, 0);
  }
  if (name == "unbounded") {
    return std::make_unique<
        compreg::baselines::UnboundedHelpingSnapshot<std::uint64_t>>(c, r, 0);
  }
  if (name == "doublecollect") {
    return std::make_unique<
        compreg::baselines::DoubleCollectSnapshot<std::uint64_t>>(c, r, 0);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string impl = "anderson";
  int components = 3;
  int readers = 2;
  std::uint64_t iters = 200;
  std::uint64_t seed = 1;
  int ops = 10;
  bool native = false;
  bool witness = false;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--impl")) {
      impl = next("--impl");
    } else if (!std::strcmp(argv[i], "--components")) {
      components = std::atoi(next("--components"));
    } else if (!std::strcmp(argv[i], "--readers")) {
      readers = std::atoi(next("--readers"));
    } else if (!std::strcmp(argv[i], "--iters")) {
      iters = std::strtoull(next("--iters"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--ops")) {
      ops = std::atoi(next("--ops"));
    } else if (!std::strcmp(argv[i], "--native")) {
      native = true;
    } else if (!std::strcmp(argv[i], "--witness")) {
      witness = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      stats = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (native && impl == "fullstack") {
    std::fprintf(stderr,
                 "fullstack is simulator-only (its primitives rely on "
                 "serialized steps)\n");
    return 2;
  }

  std::printf("verify_fuzz: impl=%s C=%d R=%d iters=%llu base_seed=%llu "
              "ops=%d mode=%s%s\n",
              impl.c_str(), components, readers,
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(seed), ops,
              (native || impl == "mw") ? "native" : "sim",
              witness ? " +witness" : "");

  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t it_seed = seed + i;
    compreg::lin::History h;
    if (impl == "mw") {
      compreg::core::MultiWriterSnapshot<std::uint64_t> snap(
          components, /*processes=*/3, readers, 0);
      compreg::lin::MwWorkloadConfig cfg;
      cfg.writes_per_process = ops;
      cfg.scans_per_reader = ops;
      cfg.stress_permille = 150;
      cfg.seed = it_seed;
      h = compreg::lin::run_native_workload_mw(snap, cfg);
    } else if (native) {
      auto snap = make_impl(impl, components, readers);
      if (!snap) {
        std::fprintf(stderr, "unknown impl '%s'\n", impl.c_str());
        return 2;
      }
      compreg::lin::WorkloadConfig cfg;
      cfg.writes_per_writer = ops;
      cfg.scans_per_reader = ops;
      cfg.stress_permille = 150;
      cfg.seed = it_seed;
      h = compreg::lin::run_native_workload(*snap, cfg);
    } else {
      auto snap = make_impl(impl, components, readers);
      if (!snap) {
        std::fprintf(stderr, "unknown impl '%s'\n", impl.c_str());
        return 2;
      }
      compreg::sched::RandomPolicy policy(it_seed);
      compreg::lin::WorkloadConfig cfg;
      cfg.writes_per_writer = ops;
      cfg.scans_per_reader = ops;
      h = compreg::lin::run_sim_workload(*snap, policy, cfg);
    }
    if (stats && i == 0) {
      std::printf("  first history: %s\n",
                  compreg::lin::compute_stats(h).summary().c_str());
    }
    const compreg::lin::CheckResult result =
        compreg::lin::check_shrinking_lemma(h);
    if (!result.ok) {
      std::printf("VIOLATION at seed %llu: %s\n",
                  static_cast<unsigned long long>(it_seed),
                  result.violation.c_str());
      std::printf("# replayable history follows\n");
      compreg::lin::dump_history(h, std::cout);
      return 1;
    }
    if (witness) {
      const compreg::lin::Witness w = compreg::lin::build_linearization(h);
      if (!w.ok) {
        std::printf("WITNESS FAILURE at seed %llu: %s\n",
                    static_cast<unsigned long long>(it_seed),
                    w.error.c_str());
        compreg::lin::dump_history(h, std::cout);
        return 1;
      }
    }
    if ((i + 1) % 50 == 0) {
      std::printf("  %llu/%llu clean\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(iters));
    }
  }
  std::printf("all %llu executions linearizable\n",
              static_cast<unsigned long long>(iters));
  return 0;
}
