// verify_net_real: end-to-end certification of the REAL transport — a
// multi-process ABD register over UDS/TCP sockets with socket-level
// fault injection and kill-9 crash-recovery chaos.
//
// The process re-executes itself as the replica fleet: the harness
// spawns 2f+1 copies of this binary with `--replica` (fork+execv via
// net/real/supervisor.h), each running the real replica event loop over
// its own SocketTransport with durable state in a FileDurable. Client
// writer/reader threads in the harness process then drive the ABD
// protocol over their own transports while the harness
//
//   * injects the NetFaultPlan at every endpoint's socket boundary
//     (drop/delay/dup/reorder locally, partitions fleet-wide in
//     milliseconds since a shared monotonic epoch),
//   * SIGKILLs and restarts replicas mid-traffic (`--kills N`), waiting
//     for each victim's rejoin-and-catch-up before the next cycle,
//   * records every operation in a global logical-clock history.
//
// Afterwards it feeds the history through the crash-aware register
// atomicity checker (Unavailable writes are recorded *pending*: they
// may still take effect, they cannot un-happen) and runs the real
// durability audit: for every kill, the restarted replica's reloaded
// durable timestamp must cover every acknowledgment a client received
// from it before the kill — the persist-before-ack discipline checked
// against real SIGKILLs rather than simulated ones.
//
// `--kill-majority` demonstrates graceful degradation: with f+1
// replicas dead, every operation must degrade to an explicit
// Unavailable within its bounded retry budget — not hang, not return a
// value. `--bench-json` sweeps loss x f and emits BENCH_transport.json.
//
// Exit codes: 0 clean, 1 violation (artifact written), 2 watchdog hang,
// 64 usage.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lin/history.h"
#include "lin/register_checker.h"
#include "net/net_plan.h"
#include "net/real/client.h"
#include "net/real/fault_transport.h"
#include "net/real/replica.h"
#include "net/real/supervisor.h"
#include "net/real/transport.h"
#include "fleet_common.h"
#include "verify_common.h"

namespace {

using compreg::lin::kPendingEnd;
using compreg::lin::LogicalClock;
using compreg::lin::RegisterHistory;
using compreg::lin::RegRead;
using compreg::lin::RegWrite;
using compreg::net::Deadline;
using compreg::net::NetFaultPlan;
using compreg::net::real::FaultyTransport;
using compreg::net::real::ProcEvent;
using compreg::net::real::RealAbdClient;
using compreg::net::real::RealClientConfig;
using compreg::net::real::ReplicaConfig;
using compreg::net::real::SocketTransport;
using compreg::net::real::Supervisor;
using compreg::net::real::TransportConfig;
using compreg::net::real::TransportKind;
using compreg::tools::Artifact;
using compreg::tools::AuditStart;
using compreg::tools::epoch_to_ns;
using compreg::tools::Fleet;
using compreg::tools::FleetConfig;
using compreg::tools::kExitUsage;
using compreg::tools::kExitViolation;
using compreg::tools::LiveState;
using compreg::tools::mix_seed;
using compreg::tools::run_replica_child;
using compreg::tools::SteadyPoint;
using compreg::tools::Watchdog;
using compreg::tools::write_artifact;

// ---------------------------------------------------------------------------
// Harness options

struct Options {
  int f = 1;
  std::uint64_t ops = 2000;  // writer operations
  int readers = 2;
  TransportKind kind = TransportKind::kUds;
  int base_port = 47600;
  std::string dir;  // empty: mkdtemp under /tmp
  std::string plan_text;
  int kills = 0;
  bool kill_majority = false;
  std::uint64_t seed = 1;
  unsigned attempt_ms = 15;
  unsigned max_attempts = 8;
  unsigned watchdog_sec = 120;
  std::string bench_json;  // when set: run the bench sweep instead
  Artifact artifact;

  int replicas() const { return 2 * f + 1; }
  const char* kind_name() const {
    return kind == TransportKind::kTcp ? "tcp" : "uds";
  }
  FleetConfig fleet_config() const {
    FleetConfig cfg;
    cfg.f = f;
    cfg.kind = kind;
    cfg.base_port = base_port;
    cfg.dir = dir;
    cfg.plan_text = plan_text;
    cfg.seed = seed;
    return cfg;
  }
};

std::string replay_command(const Options& opt) {
  std::ostringstream os;
  os << "verify_net_real --f " << opt.f << " --ops " << opt.ops
     << " --readers " << opt.readers << " --kind " << opt.kind_name()
     << " --kills " << opt.kills << " --seed " << opt.seed << " --attempt-ms "
     << opt.attempt_ms << " --max-attempts " << opt.max_attempts;
  if (!opt.plan_text.empty()) os << " --plan '" << opt.plan_text << "'";
  if (opt.kill_majority) os << " --kill-majority";
  os << "  # wall-clock chaos: replays the scenario, not the schedule";
  return os.str();
}

// ---------------------------------------------------------------------------
// Client workers

struct AckRec {
  int replica = -1;
  std::uint64_t ts = 0;
  std::int64_t t_ns = 0;
};

struct WorkerOut {
  std::vector<RegWrite> writes;
  std::vector<RegRead> reads;
  std::vector<AckRec> acks;
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t unavailable_reads = 0;
  std::uint64_t pending_writes = 0;
  std::uint64_t value_mismatches = 0;
  std::uint64_t retries = 0;
  std::uint64_t frames_sent = 0;
};

RealClientConfig client_config(const Options& opt) {
  RealClientConfig cfg;
  cfg.f = opt.f;
  cfg.attempt_timeout = std::chrono::milliseconds(opt.attempt_ms);
  cfg.max_attempts = opt.max_attempts;
  return cfg;
}

TransportConfig client_transport(const Options& opt, const Fleet& fleet,
                                 int node) {
  TransportConfig cfg;
  cfg.kind = opt.kind;
  cfg.self = node;
  cfg.replicas = opt.replicas();
  cfg.dir = fleet.dir();
  cfg.base_port = static_cast<std::uint16_t>(opt.base_port);
  return cfg;
}

// The single writer: ts sequence 1..ops, value == ts (so a read's value
// is its write id and corruption is detectable).
void writer_main(const Options& opt, const Fleet& fleet, SteadyPoint epoch,
                 LogicalClock& clock, std::atomic<std::uint64_t>& progress,
                 std::atomic<std::uint64_t>& writes_done, WorkerOut& out) {
  SocketTransport socket(client_transport(opt, fleet, opt.replicas()));
  const NetFaultPlan plan =
      opt.plan_text.empty()
          ? NetFaultPlan{}
          : NetFaultPlan::parse(opt.plan_text).value_or(NetFaultPlan{});
  FaultyTransport net(socket, plan, mix_seed(opt.seed, 1), epoch);
  RealAbdClient client(net, client_config(opt), epoch);
  client.set_ack_hook([&](int replica, std::uint64_t ts, std::int64_t t_ns) {
    out.acks.push_back(AckRec{replica, ts, t_ns});
  });
  for (std::uint64_t i = 0; i < opt.ops; ++i) {
    const std::uint64_t ts = client.next_write_ts();
    const std::uint64_t start = clock.tick();
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = client.try_write(ts, ts);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t end = clock.tick();
    out.writes.push_back(RegWrite{ts, start, ok ? end : kPendingEnd});
    if (!ok) ++out.pending_writes;
    out.latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    progress.fetch_add(1, std::memory_order_relaxed);
    writes_done.fetch_add(1, std::memory_order_relaxed);
  }
  out.retries = client.stats().retries;
  out.frames_sent = socket.stats().sent;
}

void reader_main(const Options& opt, const Fleet& fleet, SteadyPoint epoch,
                 int reader_id, LogicalClock& clock,
                 std::atomic<std::uint64_t>& progress,
                 const std::atomic<bool>& stop, WorkerOut& out) {
  const int node = opt.replicas() + 1 + reader_id;
  SocketTransport socket(client_transport(opt, fleet, node));
  const NetFaultPlan plan =
      opt.plan_text.empty()
          ? NetFaultPlan{}
          : NetFaultPlan::parse(opt.plan_text).value_or(NetFaultPlan{});
  FaultyTransport net(socket, plan, mix_seed(opt.seed, node), epoch);
  RealAbdClient client(net, client_config(opt), epoch);
  client.set_ack_hook([&](int replica, std::uint64_t ts, std::int64_t t_ns) {
    out.acks.push_back(AckRec{replica, ts, t_ns});
  });
  while (!stop.load(std::memory_order_relaxed)) {
    const std::uint64_t start = clock.tick();
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = client.try_read();
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t end = clock.tick();
    if (result.ok) {
      // value == write id by construction; a mismatch is corruption the
      // atomicity checker could never see (it only sees ids).
      if (result.val != result.ts) ++out.value_mismatches;
      out.reads.push_back(RegRead{result.ts, start, end});
      out.latencies_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    } else {
      ++out.unavailable_reads;
    }
    progress.fetch_add(1, std::memory_order_relaxed);
  }
  out.retries = client.stats().retries;
  out.frames_sent = socket.stats().sent;
}

// ---------------------------------------------------------------------------
// Durability audit (real kill-9 edition)
//
// Invariant: for every SIGKILL of replica v at supervisor time T, the
// next restart of v must reload durable_ts >= max{ts | some client
// received a STORE ack (v, ts) at time < T}. An ack received before the
// kill proves the persist completed before the kill (persist happens
// before the ack frame leaves), so the durable file must still hold it.
std::vector<std::string> audit_durability(
    const std::vector<ProcEvent>& events,
    const std::vector<AuditStart>& starts,
    const std::vector<AckRec>& acks, int* cycles_audited) {
  std::vector<std::string> findings;
  int audited = 0;
  for (const ProcEvent& ev : events) {
    if (ev.kind != ProcEvent::Kind::kKill) continue;
    std::uint64_t acked_before_kill = 0;
    for (const AckRec& ack : acks) {
      if (ack.replica == ev.node && ack.t_ns < ev.t_ns) {
        acked_before_kill = std::max(acked_before_kill, ack.ts);
      }
    }
    // First restart of this node after the kill.
    const AuditStart* restart = nullptr;
    for (const AuditStart& s : starts) {
      if (s.node == ev.node && s.t_ns > ev.t_ns &&
          (restart == nullptr || s.t_ns < restart->t_ns)) {
        restart = &s;
      }
    }
    if (restart == nullptr) continue;  // killed, never restarted: nothing owed
    ++audited;
    if (restart->existed == 0 && acked_before_kill > 0) {
      std::ostringstream os;
      os << "durability: replica " << ev.node
         << " restarted with NO durable file but had acked ts "
         << acked_before_kill << " before the kill";
      findings.push_back(os.str());
      continue;
    }
    if (restart->durable_ts < acked_before_kill) {
      std::ostringstream os;
      os << "durability: replica " << ev.node << " restarted with durable_ts "
         << restart->durable_ts << " < acked ts " << acked_before_kill
         << " (ack received " << "before the SIGKILL at t_ns=" << ev.t_ns
         << ") — persist-before-ack violated";
      findings.push_back(os.str());
    }
  }
  if (cycles_audited != nullptr) *cycles_audited = audited;
  return findings;
}

// ---------------------------------------------------------------------------
// Chaos run (the default mode)

int run_chaos(const Options& opt, LiveState& live,
              std::atomic<std::uint64_t>& progress) {
  const SteadyPoint epoch = std::chrono::steady_clock::now();
  live.set(opt.seed, "", opt.plan_text);

  Fleet fleet(opt.fleet_config(), epoch);
  if (!fleet.start()) return kExitViolation;
  if (!fleet.wait_all_serving(std::chrono::milliseconds(15000))) {
    write_artifact(opt.artifact, "fleet startup failure", opt.seed, "",
                   opt.plan_text, "", replay_command(opt),
                   "a replica never logged 'serving' within 15s of spawn",
                   nullptr);
    return kExitViolation;
  }
  progress.fetch_add(1);

  LogicalClock clock;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes_done{0};
  WorkerOut writer_out;
  std::vector<WorkerOut> reader_out(static_cast<std::size_t>(opt.readers));

  std::thread writer([&] {
    writer_main(opt, fleet, epoch, clock, progress, writes_done, writer_out);
  });
  std::vector<std::thread> readers;
  readers.reserve(static_cast<std::size_t>(opt.readers));
  for (int j = 0; j < opt.readers; ++j) {
    readers.emplace_back([&, j] {
      reader_main(opt, fleet, epoch, j, clock, progress, stop,
                  reader_out[static_cast<std::size_t>(j)]);
    });
  }

  // Kill-9 chaos: spread `kills` cycles across the writer's op stream,
  // one victim at a time, each cycle waiting for the victim's rejoin
  // (its next 'serving' audit line) before arming the next.
  std::vector<std::string> findings;
  for (int k = 0; k < opt.kills; ++k) {
    const std::uint64_t threshold =
        opt.ops * static_cast<std::uint64_t>(k + 1) /
        static_cast<std::uint64_t>(opt.kills + 1);
    while (writes_done.load(std::memory_order_relaxed) < threshold &&
           writer.joinable() &&
           writes_done.load(std::memory_order_relaxed) < opt.ops) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const int victim = k % opt.replicas();
    const int seen = fleet.serving_count(victim);
    std::printf("chaos: kill-9 cycle %d/%d -> replica %d\n", k + 1, opt.kills,
                victim);
    fleet.sup().kill9(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));  // downtime
    fleet.spawn(victim);
    progress.fetch_add(1);
    if (!fleet.wait_serving(victim, seen + 1,
                            std::chrono::milliseconds(30000))) {
      std::ostringstream os;
      os << "recovery: replica " << victim
         << " did not rejoin (no new 'serving' line) within 30s of restart";
      findings.push_back(os.str());
      break;
    }
    progress.fetch_add(1);
  }

  writer.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  fleet.sup().terminate_all(std::chrono::milliseconds(2000));

  // Assemble and check the global history.
  RegisterHistory history;
  history.writes = writer_out.writes;
  std::uint64_t reads_total = 0;
  std::uint64_t unavailable_reads = 0;
  std::uint64_t mismatches = 0;
  std::vector<AckRec> all_acks = writer_out.acks;
  for (const WorkerOut& r : reader_out) {
    history.reads.insert(history.reads.end(), r.reads.begin(), r.reads.end());
    reads_total += r.reads.size();
    unavailable_reads += r.unavailable_reads;
    mismatches += r.value_mismatches;
    all_acks.insert(all_acks.end(), r.acks.begin(), r.acks.end());
  }
  const auto lin = compreg::lin::check_register_atomicity(history);
  if (!lin.ok) {
    findings.push_back("linearizability: " + lin.violation);
  }
  if (mismatches != 0) {
    findings.push_back("corruption: " + std::to_string(mismatches) +
                       " reads returned val != ts");
  }

  int cycles_audited = 0;
  const auto durability =
      audit_durability(fleet.sup().events(), fleet.starts(), all_acks,
                       &cycles_audited);
  findings.insert(findings.end(), durability.begin(), durability.end());

  std::printf(
      "history: writes=%" PRIu64 " (pending %" PRIu64 ") reads=%" PRIu64
      " (unavailable %" PRIu64 ")\n",
      static_cast<std::uint64_t>(history.writes.size()),
      writer_out.pending_writes, reads_total, unavailable_reads);
  std::printf("lin: %s\n", lin.ok ? "OK" : lin.violation.c_str());
  std::printf("durability: %s (%d kill cycle%s audited, %zu acks)\n",
              durability.empty() ? "OK" : "VIOLATION", cycles_audited,
              cycles_audited == 1 ? "" : "s", all_acks.size());

  if (!findings.empty()) {
    std::ostringstream dump;
    for (const std::string& f : findings) dump << f << "\n";
    write_artifact(opt.artifact, "violation", opt.seed, "", opt.plan_text, "",
                   replay_command(opt), findings.front(), nullptr,
                   dump.str());
    std::printf("verify_net_real: FAIL (%zu finding%s)\n", findings.size(),
                findings.size() == 1 ? "" : "s");
    return kExitViolation;
  }
  std::printf("verify_net_real: PASS\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Kill-majority mode: explicit Unavailable degradation, never a hang

int run_kill_majority(const Options& opt, LiveState& live,
                      std::atomic<std::uint64_t>& progress) {
  const SteadyPoint epoch = std::chrono::steady_clock::now();
  live.set(opt.seed, "", opt.plan_text);
  Fleet fleet(opt.fleet_config(), epoch);
  if (!fleet.start()) return kExitViolation;
  if (!fleet.wait_all_serving(std::chrono::milliseconds(15000))) {
    std::fprintf(stderr, "fleet startup failure\n");
    return kExitViolation;
  }

  SocketTransport socket(client_transport(opt, fleet, opt.replicas()));
  FaultyTransport net(socket, NetFaultPlan{}, opt.seed, epoch);
  RealAbdClient client(net, client_config(opt), epoch);

  // Warmup: with the full fleet up, writes must succeed.
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t ts = client.next_write_ts();
    if (!client.try_write(ts, ts)) {
      std::fprintf(stderr, "warmup write %d failed with full fleet\n", i);
      return kExitViolation;
    }
    progress.fetch_add(1);
  }

  // Kill a majority: f+1 of 2f+1 replicas.
  for (int node = 0; node <= opt.f; ++node) fleet.sup().kill9(node);
  std::printf("kill-majority: %d of %d replicas SIGKILLed\n", opt.f + 1,
              opt.replicas());

  // Every further operation must degrade to explicit Unavailable within
  // its bounded retry budget. The watchdog guards against hangs; the
  // per-op bound below guards against unbounded-but-moving retries.
  const auto per_op_budget = std::chrono::milliseconds(
      static_cast<std::int64_t>(opt.max_attempts) *
      (static_cast<std::int64_t>(opt.attempt_ms) + 64 + 32) * 4);
  std::uint64_t unavailable = 0;
  const std::uint64_t attempts = std::min<std::uint64_t>(opt.ops, 50);
  for (std::uint64_t i = 0; i < attempts; ++i) {
    const std::uint64_t ts = client.next_write_ts();
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = client.try_write(ts, ts);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    progress.fetch_add(1);
    if (ok) {
      std::fprintf(stderr,
                   "kill-majority: write %" PRIu64
                   " claimed success without a quorum\n",
                   i);
      return kExitViolation;
    }
    if (elapsed > per_op_budget) {
      std::fprintf(stderr,
                   "kill-majority: write %" PRIu64 " took longer than the "
                   "retry budget allows (not a bounded degradation)\n",
                   i);
      return kExitViolation;
    }
    ++unavailable;
  }
  const auto read = client.try_read();
  if (read.ok) {
    std::fprintf(stderr, "kill-majority: read claimed success\n");
    return kExitViolation;
  }
  std::printf("kill-majority: %" PRIu64 "/%" PRIu64
              " writes and 1/1 reads degraded to explicit Unavailable "
              "(bounded, no hangs, no wrong values)\n",
              unavailable, attempts);
  std::printf("verify_net_real: PASS\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Bench sweep: loss x f -> BENCH_transport.json

struct BenchRow {
  unsigned loss_permille = 0;
  int f = 1;
  std::uint64_t ops = 0;
  double secs = 0;
  double p50_us = 0;
  double p99_us = 0;
  double retries_per_op = 0;
  double msgs_per_op = 0;
  std::uint64_t pending = 0;
  std::uint64_t unavailable_reads = 0;
};

double percentile_us(std::vector<std::uint64_t>& ns, double q) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(ns.size() - 1));
  return static_cast<double>(ns[idx]) / 1000.0;
}

int run_bench(Options opt, std::atomic<std::uint64_t>& progress) {
  const unsigned losses[] = {0, 10, 100};  // permille: 0%, 1%, 10%
  const int fs[] = {1, 2};
  std::vector<BenchRow> rows;
  int cell = 0;
  for (const int f : fs) {
    for (const unsigned loss : losses) {
      Options cfg = opt;
      cfg.f = f;
      cfg.plan_text = loss == 0 ? "" : "drop:" + std::to_string(loss);
      cfg.base_port = opt.base_port + 16 * cell;
      ++cell;
      const SteadyPoint epoch = std::chrono::steady_clock::now();
      Fleet fleet(cfg.fleet_config(), epoch);
      if (!fleet.start("bench-l" + std::to_string(loss) + "-f" +
                       std::to_string(f))) {
        return kExitViolation;
      }
      if (!fleet.wait_all_serving(std::chrono::milliseconds(15000))) {
        std::fprintf(stderr, "bench fleet startup failure\n");
        return kExitViolation;
      }
      LogicalClock clock;
      std::atomic<bool> stop{false};
      std::atomic<std::uint64_t> writes_done{0};
      WorkerOut writer_out;
      std::vector<WorkerOut> reader_out(1);
      const auto t0 = std::chrono::steady_clock::now();
      std::thread writer([&] {
        writer_main(cfg, fleet, epoch, clock, progress, writes_done,
                    writer_out);
      });
      std::thread reader([&] {
        reader_main(cfg, fleet, epoch, 0, clock, progress, stop,
                    reader_out[0]);
      });
      writer.join();
      stop.store(true);
      reader.join();
      const auto t1 = std::chrono::steady_clock::now();
      fleet.sup().terminate_all(std::chrono::milliseconds(2000));

      BenchRow row;
      row.loss_permille = loss;
      row.f = f;
      row.ops = cfg.ops + reader_out[0].reads.size() +
                reader_out[0].unavailable_reads;
      row.secs = std::chrono::duration<double>(t1 - t0).count();
      std::vector<std::uint64_t> lat = writer_out.latencies_ns;
      lat.insert(lat.end(), reader_out[0].latencies_ns.begin(),
                 reader_out[0].latencies_ns.end());
      row.p50_us = percentile_us(lat, 0.50);
      row.p99_us = percentile_us(lat, 0.99);
      const double ops_d = static_cast<double>(row.ops);
      row.retries_per_op =
          static_cast<double>(writer_out.retries + reader_out[0].retries) /
          ops_d;
      row.msgs_per_op = static_cast<double>(writer_out.frames_sent +
                                            reader_out[0].frames_sent) /
                        ops_d;
      row.pending = writer_out.pending_writes;
      row.unavailable_reads = reader_out[0].unavailable_reads;
      rows.push_back(row);
      std::printf("bench: loss=%u%%o f=%d ops=%" PRIu64
                  " thr=%.0f/s p50=%.1fus p99=%.1fus retries/op=%.4f "
                  "msgs/op=%.2f\n",
                  loss, f, row.ops, ops_d / row.secs, row.p50_us, row.p99_us,
                  row.retries_per_op, row.msgs_per_op);
    }
  }

  std::ofstream out(opt.bench_json);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.bench_json.c_str());
    return kExitViolation;
  }
  out << "{\n  \"schema_version\": 1,\n  \"bench\": \"transport\",\n"
      << "  \"kind\": \"" << opt.kind_name() << "\",\n"
      << "  \"writer_ops_per_cell\": " << opt.ops << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"loss_permille\": " << r.loss_permille << ", \"f\": " << r.f
        << ", \"ops\": " << r.ops << ", \"throughput_ops_per_s\": "
        << static_cast<double>(r.ops) / r.secs << ", \"p50_us\": " << r.p50_us
        << ", \"p99_us\": " << r.p99_us
        << ", \"retries_per_op\": " << r.retries_per_op
        << ", \"msgs_per_op\": " << r.msgs_per_op
        << ", \"pending_writes\": " << r.pending
        << ", \"unavailable_reads\": " << r.unavailable_reads << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("bench: wrote %s\n", opt.bench_json.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--replica")) {
    return run_replica_child(argc, argv);
  }

  Options opt;
  opt.artifact.tool = "verify_net_real";
  opt.artifact.path = "verify_net_real_failure.txt";
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--f")) {
      opt.f = std::atoi(next("--f"));
    } else if (!std::strcmp(argv[i], "--ops")) {
      opt.ops = std::strtoull(next("--ops"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--readers")) {
      opt.readers = std::atoi(next("--readers"));
    } else if (!std::strcmp(argv[i], "--kind")) {
      opt.kind = !std::strcmp(next("--kind"), "tcp") ? TransportKind::kTcp
                                                     : TransportKind::kUds;
    } else if (!std::strcmp(argv[i], "--base-port")) {
      opt.base_port = std::atoi(next("--base-port"));
    } else if (!std::strcmp(argv[i], "--dir")) {
      opt.dir = next("--dir");
    } else if (!std::strcmp(argv[i], "--plan")) {
      opt.plan_text = next("--plan");
    } else if (!std::strcmp(argv[i], "--kills")) {
      opt.kills = std::atoi(next("--kills"));
    } else if (!std::strcmp(argv[i], "--kill-majority")) {
      opt.kill_majority = true;
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--attempt-ms")) {
      opt.attempt_ms =
          static_cast<unsigned>(std::atoi(next("--attempt-ms")));
    } else if (!std::strcmp(argv[i], "--max-attempts")) {
      opt.max_attempts =
          static_cast<unsigned>(std::atoi(next("--max-attempts")));
    } else if (!std::strcmp(argv[i], "--watchdog")) {
      opt.watchdog_sec =
          static_cast<unsigned>(std::atoi(next("--watchdog")));
    } else if (!std::strcmp(argv[i], "--bench-json")) {
      opt.bench_json = next("--bench-json");
    } else if (!std::strcmp(argv[i], "--out")) {
      opt.artifact.path = next("--out");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return kExitUsage;
    }
  }
  if (opt.f < 1 || opt.readers < 0) {
    std::fprintf(stderr, "need --f >= 1 and --readers >= 0\n");
    return kExitUsage;
  }
  if (!opt.plan_text.empty()) {
    std::string error;
    if (!NetFaultPlan::parse(opt.plan_text, &error)) {
      std::fprintf(stderr, "bad --plan: %s\n", error.c_str());
      return kExitUsage;
    }
  }
  bool made_tmp = false;
  if (opt.dir.empty()) {
    char tmpl[] = "/tmp/compreg-netreal-XXXXXX";
    char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return kExitViolation;
    }
    opt.dir = made;
    made_tmp = true;
  }
  {
    std::ostringstream os;
    os << "verify_net_real --f " << opt.f << " --ops " << opt.ops
       << " --readers " << opt.readers << " --kind " << opt.kind_name()
       << " --kills " << opt.kills << " --seed " << opt.seed;
    opt.artifact.config_line = os.str();
  }

  LiveState live;
  std::atomic<std::uint64_t> progress{0};
  const Options& opt_ref = opt;
  Watchdog watchdog(
      opt.watchdog_sec, opt.artifact, progress, live,
      [&opt_ref](std::uint64_t seed, const std::string&, const std::string&,
                 const std::string&) {
        Options replay = opt_ref;
        replay.seed = seed;
        return replay_command(replay);
      },
      nullptr);

  int rc = 0;
  if (!opt.bench_json.empty()) {
    rc = run_bench(opt, progress);
  } else if (opt.kill_majority) {
    rc = run_kill_majority(opt, live, progress);
  } else {
    rc = run_chaos(opt, live, progress);
  }
  if (made_tmp && rc == 0) {
    const std::string cmd = "rm -rf '" + opt.dir + "'";
    [[maybe_unused]] const int ignored = std::system(cmd.c_str());
  } else if (made_tmp) {
    std::printf("data dir kept for inspection: %s\n", opt.dir.c_str());
  }
  return rc;
}
