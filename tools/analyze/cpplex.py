"""cpplex: the shared comment/string-stripping C++ lexer and brace-scope
parser behind the repo's static-analysis tooling.

This is the machinery PR 6's lint_schedule_points.py proved out,
factored into a package so every pass of tools/analyze (wait-freedom,
blocking calls, memory orders, struct layout) and the schedule-point
lint parse the implementation trees the same way. It is deliberately
NOT a real C++ front end: it strips comments and literals while
preserving line structure, matches braces into scopes, and classifies
scope headers as function-like or not. That is enough to attribute a
token to "the function it is in" — the unit every audit pass reasons
about — over this codebase's disciplined C++ subset, and `--self-test`
corpora plus tests/analyze/cpplex_test.py keep it honest.

Guarantees the passes rely on:
  * strip_comments_and_strings() preserves byte-for-byte line structure
    (same number of lines, tokens keep their line/column), blanks the
    inside of //, /* */, "...", '...' and raw R"delim(...)delim"
    literals, and leaves everything else untouched.
  * parse_scopes() yields every brace scope with its header text and
    [start, end] line span; function classification handles member
    initializer lists, const/noexcept/override/final/trailing-return
    specifiers, and treats lambdas and uniform-init braces as
    non-function scopes (their contents attribute to the enclosing
    function).
  * Nested templates (Foo<Bar<T>>) and brackets never unbalance the
    scope stack: only '{' / '}' drive it, and header accumulation
    resets at ';'.
"""

import re
from collections import namedtuple

# A brace-matched scope. `header` is the text between the previous
# scope terminator and the '{'; `is_function` says the header looks
# like a function definition; `name` is the identifier before the first
# top-level '(' (None when there is none); `start`/`end` are 1-based
# line numbers of the '{' and '}'.
Scope = namedtuple("Scope", "header is_function name start end")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignas", "alignof", "decltype", "static_assert",
    "new", "delete", "throw", "case", "default", "co_return",
}

NON_FUNCTION_HEADS = re.compile(
    r"^\s*(namespace|struct|class|union|enum|extern)\b"
)

_RAW_STRING_OPEN = re.compile(r'R"([^()\\ \t\n]{0,16})\(')


def strip_comments_and_strings(text):
    """Blank out comments and literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "R" and text.startswith('R"', i):
            # Raw string literal: R"delim( ... )delim". No escape
            # processing inside; newlines are legal and preserved.
            m = _RAW_STRING_OPEN.match(text, i)
            if m is None:
                out.append(c)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, m.end())
            j = n if j < 0 else j + len(close)
            out.append('""')
            out.append("".join("\n" for ch in text[i:j] if ch == "\n"))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2 else c)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def function_name(header):
    """Identifier before the first top-level '(' of a scope header."""
    depth = 0
    for idx, ch in enumerate(header):
        if ch in "<[":
            depth += 1
        elif ch in ">]":
            depth = max(0, depth - 1)
        elif ch == "(" and depth == 0:
            m = re.search(r"([~\w:]+)\s*$", header[:idx])
            if not m:
                return None
            return m.group(1).split("::")[-1]
    return None


def parse_scopes(clean):
    """Brace-matched scopes of comment/string-stripped text.

    A scope is function-like when its header ends in ')' (plus trailing
    specifiers), names a non-keyword identifier before its first '(',
    and is not a namespace/class/struct/enum/union head. Lambdas and
    uniform-init braces become non-function scopes; ops inside them
    attribute to the nearest enclosing function scope.
    """
    scopes = []
    stack = []  # (header, is_function, name, start_line)
    line = 1
    header_chars = []
    i, n = 0, len(clean)
    while i < n:
        c = clean[i]
        if c == "\n":
            line += 1
            header_chars.append(c)
        elif c == "{":
            header = "".join(header_chars).strip()
            # Constructor member-init lists re-open after ':'; keep the
            # whole header so the name extraction sees Foo::Foo(...).
            name = function_name(header)
            trimmed = re.sub(
                r"(\)|\bconst\b|\bnoexcept\b|\boverride\b|\bfinal\b|"
                r"->\s*[\w:<>,*&\s]+|:\s*[^{}]*)\s*$",
                ")",
                header,
            )
            is_fn = bool(
                header
                and not NON_FUNCTION_HEADS.search(header)
                and name
                and name.lstrip("~") not in CONTROL_KEYWORDS
                and trimmed.endswith(")")
                and "(" in header
            )
            stack.append((header, is_fn, name, line))
            header_chars = []
        elif c == "}":
            if stack:
                header, is_fn, name, start = stack.pop()
                scopes.append(Scope(header, is_fn, name, start, line))
            header_chars = []
        elif c == ";":
            header_chars = []
        else:
            header_chars.append(c)
        i += 1
    return scopes


def class_names(clean):
    """Names of every class/struct declared in the stripped text."""
    return set(
        re.findall(r"\b(?:class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?(\w+)",
                   clean)
    )


def record_scopes(scopes):
    """The subset of scopes that are class/struct bodies, with names.

    Returns [(name, Scope)] for headers of the form
    `class X ...` / `struct X ...` (template heads included).
    """
    out = []
    for s in scopes:
        m = re.search(
            r"\b(?:class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?(\w+)\s*"
            r"(?:final\b)?\s*(?::[^{]*)?$",
            s.header,
        )
        if m:
            out.append((m.group(1), s))
    return out


def function_scopes(scopes):
    return [s for s in scopes if s.is_function]


def enclosing_function(fn_scopes, lineno):
    """Innermost function scope containing `lineno`, or None."""
    best = None
    for s in fn_scopes:
        if s.start <= lineno <= s.end:
            if best is None or s.start > best.start:
                best = s
    return best


def balanced_args(clean, open_idx):
    """Span of a balanced parenthesized argument list.

    `open_idx` must point at '(' in the stripped text; returns the
    index one past the matching ')' (or len(clean) if unbalanced) and
    the argument text between the parentheses.
    """
    depth = 0
    i, n = open_idx, len(clean)
    while i < n:
        c = clean[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1, clean[open_idx + 1:i]
        i += 1
    return n, clean[open_idx + 1:n]


class SourceFile:
    """One parsed file: the shared context every analysis pass reads."""

    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.clean = strip_comments_and_strings(text)
        self.clean_lines = self.clean.splitlines()
        self.scopes = parse_scopes(self.clean)
        self.fn_scopes = function_scopes(self.scopes)
        self.records = record_scopes(self.scopes)
        self.ctors = class_names(self.clean)

    def enclosing_function(self, lineno):
        return enclosing_function(self.fn_scopes, lineno)

    def is_ctor_or_dtor(self, scope):
        if scope is None or scope.name is None:
            return False
        return (scope.name.lstrip("~") in self.ctors
                or scope.name.startswith("~"))

    def function_body(self, scope):
        """Stripped body text of a scope (header line through end)."""
        return "\n".join(self.clean_lines[scope.start - 1:scope.end])

    def line_offset(self, lineno):
        """Character offset of the start of a 1-based line in `clean`."""
        off = 0
        for i in range(lineno - 1):
            off += len(self.clean_lines[i]) + 1
        return off
