"""blocking pass: calls that can block (or take unbounded time) on a
wait-free path.

A wait-free operation may not acquire a mutex, wait on a condition
variable, sleep, yield, or allocate on the hot path — any of those
hands progress to the scheduler or the allocator. This pass flags, in
every non-constructor function of the audited trees:

  * lock acquisition: std::lock_guard / unique_lock / scoped_lock /
    shared_lock construction, and explicit .lock()/.try_lock()/.unlock();
  * condition variables (wait/notify are blocking by definition);
  * sleeps and yields (sleep_for, sleep_until, usleep, nanosleep,
    this_thread::yield);
  * dynamic allocation: `new`, malloc/calloc/realloc, make_unique /
    make_shared (the general-purpose allocator takes locks).

Constructors and destructors are skipped: they run before the object is
shared (or after), so allocation and locking there cannot stall a
concurrent operation. Known limitation, stated rather than hidden:
container mutations (push_back, resize) are NOT flagged — the trees
pre-size their vectors in constructors, and flagging every element
access would bury the signal; the allocation check above catches the
direct escape hatches.

The mutex baseline is blocking BY DESIGN — it carries a file-level
`audit: exempt(blocking, ...)` saying exactly that, which keeps the
exemption visible in AUDIT.json instead of special-cased in the tool.
"""

import bisect
import re

NAME = "blocking"
DESCRIPTION = ("blocking/unbounded calls on wait-free paths: locks, "
               "condition variables, sleeps, yields, allocation")

_PATTERNS = (
    (re.compile(r"\b(?:std::)?(lock_guard|unique_lock|scoped_lock|"
                r"shared_lock)\s*[<({]"),
     "constructs a {0} (lock acquisition blocks)"),
    (re.compile(r"(?:\.|->)\s*(lock|try_lock|unlock)\s*\("),
     "calls .{0}() on a lock object"),
    (re.compile(r"\b(condition_variable(?:_any)?)\b"),
     "uses a {0} (waiting is blocking by definition)"),
    (re.compile(r"\b(sleep_for|sleep_until|usleep|nanosleep)\s*\("),
     "sleeps via {0}() — unbounded wall-clock stall"),
    (re.compile(r"\b(?:std::)?this_thread::(yield)\s*\("),
     "yields to the scheduler ({0}) — progress now depends on it"),
    (re.compile(r"\bnew\b(?!\s*\()"),
     "allocates with `new` — the allocator may take locks"),
    (re.compile(r"\b(make_unique|make_shared|malloc|calloc|realloc)\s*"
                r"[<(]"),
     "allocates via {0} — the allocator may take locks"),
)


def _line_starts(clean):
    starts = [0]
    for i, c in enumerate(clean):
        if c == "\n":
            starts.append(i + 1)
    return starts


def run(ctx):
    src = ctx.src
    clean = src.clean
    starts = _line_starts(clean)
    seen = set()
    for pat, msg in _PATTERNS:
        for m in pat.finditer(clean):
            lineno = bisect.bisect_right(starts, m.start())
            fn = src.enclosing_function(lineno)
            if fn is None:
                continue  # member declarations don't execute
            if src.is_ctor_or_dtor(fn):
                ctx.census(NAME, {"kind": "ctor-only", "line": lineno,
                                  "what": m.group(0).strip()})
                continue
            what = m.group(1) if m.groups() else "new"
            key = (lineno, what)
            if key in seen:
                continue
            seen.add(key)
            ctx.finding(NAME, lineno, msg.format(what))
