"""layout pass: static struct layout and false-sharing audit.

False sharing — two atomics hammered by different threads landing on
one 64-byte cache line — is invisible to every dynamic tool this repo
runs (TSan sees no race, chaos sees no bug, only throughput dies).
This pass recomputes struct layouts statically from the member
declaration order:

  * member sizes/alignments come from a table of fundamentals,
    pointers, smart pointers, std::atomic<T> (size of T), atomic_flag,
    and arrays thereof;
  * a member of unknown size breaks the offset chain — subsequent
    offsets restart relative to an unknown base (conservative, stated
    in the census rather than guessed);
  * two atomic members whose start offsets are within 64 bytes of each
    other (same chain segment) are reported as potentially sharing a
    cache line, UNLESS an alignas(64) separates them.

The pass cannot know which thread writes which member, so the finding
asks the author to decide: distinct writers -> separate with
alignas(64); same writer (or cold data) -> exempt with
`audit: exempt(layout, <reason>)` on the struct. Either way the layout
decision becomes visible in the source and in AUDIT.json.

Census: every audited record with member/atomic counts and the computed
size lower bound (when the whole chain resolved).
"""

import re

NAME = "layout"
DESCRIPTION = ("struct layout / false-sharing audit: atomics sharing a "
               "64-byte line without alignas separation")

CACHE_LINE = 64

_FUNDAMENTAL = {
    "bool": 1, "char": 1, "signed char": 1, "unsigned char": 1,
    "int8_t": 1, "uint8_t": 1, "std::byte": 1,
    "short": 2, "unsigned short": 2, "int16_t": 2, "uint16_t": 2,
    "char16_t": 2,
    "int": 4, "unsigned": 4, "unsigned int": 4, "int32_t": 4,
    "uint32_t": 4, "float": 4, "char32_t": 4,
    "long": 8, "unsigned long": 8, "long long": 8,
    "unsigned long long": 8, "int64_t": 8, "uint64_t": 8,
    "size_t": 8, "ptrdiff_t": 8, "intptr_t": 8, "uintptr_t": 8,
    "double": 8, "seq_t": 8,
}
_OPAQUE = {
    "unique_ptr": 8, "shared_ptr": 16, "weak_ptr": 16,
    "vector": 24, "string": 32, "deque": 80, "function": 32,
}
_SKIP_HEAD = re.compile(
    r"^\s*(struct|class|union|enum|using|typedef|friend|static_assert|"
    r"template|public|private|protected|explicit|virtual|operator|"
    r"COMPREG_\w+|~)\b")


class Member:
    __slots__ = ("name", "type", "line", "size", "align", "is_atomic",
                 "alignas", "segment", "offset")

    def __init__(self, name, type_, line):
        self.name = name
        self.type = type_
        self.line = line
        self.size = None
        self.align = None
        self.is_atomic = False
        self.alignas = 0
        self.segment = 0
        self.offset = None


def _strip_std(t):
    return re.sub(r"\bstd::", "", t)


def _sizeof(type_text):
    """(size, align, is_atomic) or (None, None, is_atomic)."""
    t = _strip_std(" ".join(type_text.split()))
    t = re.sub(r"\b(mutable|const|volatile|typename)\b", "", t).strip()
    is_atomic = False
    m = re.match(r"^atomic\s*<(.*)>$", t)
    if m:
        is_atomic = True
        t = m.group(1).strip()
    elif t == "atomic_flag":
        return 1, 1, True
    if "*" in t:
        return 8, 8, is_atomic
    if t in _FUNDAMENTAL:
        s = _FUNDAMENTAL[t]
        return s, s, is_atomic
    m = re.match(r"^(\w+)\s*<", t)
    if m and m.group(1) in _OPAQUE and not is_atomic:
        return _OPAQUE[m.group(1)], 8, False
    m = re.match(r"^array\s*<(.*),\s*(\d+)\s*>$", t)
    if m and not is_atomic:
        s, a, _ = _sizeof(m.group(1))
        if s is not None:
            return s * int(m.group(2)), a, False
    return None, None, is_atomic


def _blank_nested(body):
    """Blank nested brace groups. Function bodies (brace preceded by ')',
    '}' or a specifier keyword) are replaced by ';' so the header becomes
    its own chunk; brace initializers keep their braces."""
    out = []
    i, n = 0, len(body)
    while i < n:
        c = body[i]
        if c != "{":
            out.append(c)
            i += 1
            continue
        depth = 0
        j = i
        while j < n:
            if body[j] == "{":
                depth += 1
            elif body[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        group = body[i:j + 1]
        behind = "".join(out).rstrip()
        prev_word = re.search(r"([\w)\}:]+)\s*$", behind)
        prev = prev_word.group(1) if prev_word else ""
        is_fn_body = (prev.endswith((")", "}")) or prev in
                      ("const", "override", "final", "noexcept", "try")
                      or prev.endswith(":"))
        nl = "".join("\n" for ch in group if ch == "\n")
        if is_fn_body:
            out.append(";" + nl)
        else:
            out.append("{ }" + nl)
        i = j + 1
    return "".join(out)


def _record_body(src, scope):
    off = src.line_offset(scope.start)
    open_idx = src.clean.find("{", off)
    if open_idx < 0:
        return None, scope.start
    depth = 0
    close = len(src.clean) - 1
    for k in range(open_idx, len(src.clean)):
        if src.clean[k] == "{":
            depth += 1
        elif src.clean[k] == "}":
            depth -= 1
            if depth == 0:
                close = k
                break
    return src.clean[open_idx + 1:close], scope.start


def _parse_members(src, scope):
    body, base_line = _record_body(src, scope)
    if body is None:
        return []
    flat = _blank_nested(body)
    members = []
    line = base_line  # line of the '{'
    chunk_start_line = line
    chunk = []
    for c in flat + ";":
        if c == "\n":
            line += 1
        if c == ";":
            text = "".join(chunk)
            members.extend(_parse_chunk(text, chunk_start_line))
            chunk = []
            chunk_start_line = line
        else:
            chunk.append(c)
    return members


def _parse_chunk(text, start_line):
    # Line of the declaration = line of its last non-blank content.
    leading_nl = 0
    for ch in text:
        if ch == "\n":
            leading_nl += 1
        elif not ch.isspace():
            break
    line = start_line + leading_nl
    stripped = re.sub(r"\b(public|private|protected)\s*:", " ", text)
    stripped = stripped.strip()
    if not stripped or _SKIP_HEAD.match(stripped):
        return []
    if re.search(r"\b(static|constexpr)\b", stripped):
        return []  # no instance storage
    al = 0
    m = re.search(r"alignas\s*\(\s*(\d+)\s*\)", stripped)
    if m:
        al = int(m.group(1))
        stripped = stripped[:m.start()] + stripped[m.end():]
    # Drop the initializer, then match `<type tokens> <name> [arr]`.
    no_init = re.sub(r"(\{.*\}|=.*)\s*$", "", stripped,
                     flags=re.S).strip()
    probe = no_init
    while re.search(r"<[^<>]*>", probe):
        probe = re.sub(r"<[^<>]*>", "#", probe)
    if "(" in probe:
        return []  # function/operator declaration
    dm = re.match(r"^(?P<type>.+?)\s+(?P<name>\w+)\s*"
                  r"(?P<arr>\[\s*\w*\s*\])?\s*$", no_init, re.S)
    if not dm:
        return []
    mem = Member(dm.group("name"), dm.group("type").strip(), line)
    size, align, is_atomic = _sizeof(mem.type)
    if size is not None and dm.group("arr"):
        n = re.match(r"\[\s*(\d+)\s*\]", dm.group("arr"))
        size = size * int(n.group(1)) if n else None
    mem.size, mem.align, mem.is_atomic = size, align, is_atomic
    mem.alignas = al
    return [mem]


def _lay_out(members):
    segment, offset = 0, 0
    for mem in members:
        if mem.size is None:
            segment += 1
            offset = 0
            mem.segment = segment
            continue
        align = max(mem.align or 1, mem.alignas or 1)
        offset = (offset + align - 1) // align * align
        mem.segment = segment
        mem.offset = offset
        offset += mem.size
    return offset if segment == 0 else None


def run(ctx):
    src = ctx.src
    for name, scope in src.records:
        members = _parse_members(src, scope)
        if not members:
            continue
        size_lb = _lay_out(members)
        atomics = [m for m in members if m.is_atomic and m.offset is not None]
        ctx.census(NAME, {
            "kind": "record", "record": name, "line": scope.start,
            "members": len(members),
            "atomics": sum(1 for m in members if m.is_atomic),
            "size_lower_bound": size_lb,
        })
        # Cluster atomics that can share a cache line. When an
        # alignas(64) member forces the whole struct to line alignment,
        # segment-0 offsets are exact and the test is "same 64-byte
        # window"; otherwise the base alignment is unknown and any two
        # atomics whose starts are within 64 bytes may share.
        exact = any((m.alignas or 0) >= CACHE_LINE for m in members)
        cluster = []
        for mem in atomics:
            if cluster and mem.segment == cluster[-1].segment:
                if exact and mem.segment == 0:
                    same = (mem.offset // CACHE_LINE
                            == cluster[-1].offset // CACHE_LINE)
                else:
                    same = mem.offset - cluster[-1].offset < CACHE_LINE
                if same:
                    cluster.append(mem)
                    continue
            _flag_cluster(ctx, name, cluster)
            cluster = [mem]
        _flag_cluster(ctx, name, cluster)


def _flag_cluster(ctx, record, cluster):
    if len(cluster) < 2:
        return
    desc = ", ".join(f"{m.name} (+{m.offset})" for m in cluster)
    ctx.finding(
        NAME, cluster[0].line,
        f"struct {record}: atomics {desc} may share a {CACHE_LINE}-byte "
        "cache line; if distinct threads write them, separate with "
        "alignas(64), otherwise exempt the struct with the reason")
