"""Driver for tools/analyze: pass registry, exemption grammar, output.

Runs every registered static-analysis pass over the implementation
trees and reports findings as `path:line: [pass] message` plus a
machine-readable AUDIT.json. Exit codes: 0 clean, 1 findings, 64 usage.

Exemption grammar
-----------------
A finding is suppressed by a marker comment

    // audit: exempt(<pass>, <reason>)

where <pass> names a registered pass (or `all`) and <reason> is
MANDATORY free text — an exemption without a written reason, or naming
an unknown pass, is itself a finding. Marker placement decides scope:

  * inside a function body, on its header line, or on the two lines
    directly above it: exempts that function for that pass;
  * inside a class/struct body but outside any member function:
    exempts that record (layout findings anchor to member lines);
  * outside any scope (file top level): exempts the whole file.

Directory-level exemptions live in EXEMPT_DIRS below with the same
mandatory-reason rule; they are printed whenever skipped so the hole
stays visible.

Every used exemption is recorded in AUDIT.json next to the findings,
so "0 findings" always comes with the list of judgement calls it rests
on.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import blocking  # noqa: E402
import cpplex  # noqa: E402
import layout  # noqa: E402
import memorder  # noqa: E402
import waitfree  # noqa: E402

PASSES = {p.NAME: p for p in (waitfree, blocking, memorder, layout)}

DEFAULT_TREES = (
    "src/registers",
    "src/baselines",
    "src/core",
    "src/net",
    "src/prmw",
    "src/telemetry",
    "src/server",
)

# (directory, pass) -> mandatory reason. These subtrees run OUTSIDE the
# wait-free shared-memory model by design, so two of the passes do not
# apply; the other passes still run there.
EXEMPT_DIRS = {
    ("src/net/real", "waitfree"): (
        "real-socket transport: separate OS processes under real kernels; "
        "progress is wall-clock-bounded by Deadline/backoff budgets and "
        "verified by verify_net_real chaos runs, not by per-step "
        "wait-freedom"
    ),
    ("src/net/real", "blocking"): (
        "real-socket transport: epoll waits, syscalls, heap buffers and "
        "sleeps are the point of this layer; the wait-free discipline "
        "stops at the Transport seam (see docs/fault_model.md)"
    ),
    ("src/server", "waitfree"): (
        "register service layer: thread handoff between front-end and "
        "workers is mutex+condvar by design (like src/net/real, it sits "
        "above the Transport seam); the wait-free discipline applies to "
        "the telemetry recorders on its operation paths, which live in "
        "src/telemetry and are audited in full"
    ),
    ("src/server", "blocking"): (
        "register service layer: ReadBatcher and the blocking client "
        "use mutexes, condvars and socket waits on purpose; liveness is "
        "wall-clock-bounded by attempt budgets and certified by the "
        "compreg_loadgen soak ctests, not by per-step wait-freedom"
    ),
}

EXEMPT_MARKER = re.compile(
    r"audit:\s*exempt\s*\(\s*([\w-]+)\s*,\s*([^)]*)\)"
)
EXEMPT_MALFORMED = re.compile(r"audit:\s*exempt\b(?!\s*\(\s*[\w-]+\s*,)")


class Exemption:
    __slots__ = ("pass_name", "reason", "line", "scope", "used")

    def __init__(self, pass_name, reason, line, scope):
        self.pass_name = pass_name  # a pass name or "all"
        self.reason = reason
        self.line = line
        self.scope = scope  # "file" | ("function", Scope) | ("record", Scope)
        self.used = False

    def covers(self, pass_name, lineno, fn_scope):
        if self.pass_name not in ("all", pass_name):
            return False
        if self.scope == "file":
            return True
        kind, s = self.scope
        if kind == "function":
            if fn_scope is not None and fn_scope.start == s.start:
                return True
            # Findings outside any function still honor a marker whose
            # function span contains the finding line (e.g. lambdas).
            return s.start <= lineno <= s.end
        return s.start <= lineno <= s.end  # record span


class AuditFile:
    """Per-file context handed to every pass."""

    def __init__(self, path, rel, text, report):
        self.src = cpplex.SourceFile(path, text)
        self.rel = rel
        self._report = report
        self.exemptions = []
        self._parse_markers()

    def _parse_markers(self):
        src = self.src
        for lineno, raw in enumerate(src.lines, 1):
            m = EXEMPT_MARKER.search(raw)
            if not m:
                if EXEMPT_MALFORMED.search(raw):
                    self._report.raw_finding(
                        "driver", self.rel, lineno, None,
                        "malformed audit marker; write "
                        "audit: exempt(<pass>, <reason>)")
                continue
            pass_name = m.group(1).strip()
            reason = m.group(2).strip()
            if pass_name not in PASSES and pass_name != "all":
                self._report.raw_finding(
                    "driver", self.rel, lineno, None,
                    f"audit: exempt names unknown pass `{pass_name}` "
                    f"(known: {', '.join(sorted(PASSES))}, all)")
                continue
            if not reason:
                self._report.raw_finding(
                    "driver", self.rel, lineno, None,
                    f"audit: exempt({pass_name}, ...) has an empty reason; "
                    "justify the exemption")
                continue
            self.exemptions.append(
                Exemption(pass_name, reason, lineno,
                          self._marker_scope(lineno, pass_name)))

    def _marker_scope(self, lineno, pass_name=None):
        fn = self.src.enclosing_function(lineno)
        if pass_name == "layout" and fn is None:
            # Layout findings anchor to member declarations; a marker in
            # a struct body scopes to the record even when it happens to
            # sit near a method header.
            for name, s in self.src.records:
                if s.start <= lineno <= s.end:
                    return ("record", s)
        if fn is None:
            # A marker on the two lines directly above a function header
            # exempts that function (mirrors sched-lint's placement rule).
            for s in self.src.fn_scopes:
                header_top = self._header_first_line(s)
                if header_top - 2 <= lineno < header_top:
                    return ("function", s)
                if header_top <= lineno <= s.end:
                    return ("function", s)
            for name, s in self.src.records:
                if s.start <= lineno <= s.end:
                    return ("record", s)
            return "file"
        return ("function", fn)

    def _header_first_line(self, scope):
        # Scope.start is the '{' line; the header may start earlier. Walk
        # up while previous lines belong to the header (heuristic: stop
        # at blank/terminator lines). Good enough for marker placement.
        first = scope.start
        header_lines = scope.header.count("\n")
        return max(1, first - header_lines)

    def finding(self, pass_name, lineno, message):
        """Report a finding unless an exemption covers it."""
        fn = self.src.enclosing_function(lineno)
        for ex in self.exemptions:
            if ex.covers(pass_name, lineno, fn):
                ex.used = True
                self._report.exempted(pass_name, self.rel, lineno,
                                      fn.name if fn else None, ex.reason)
                return
        self._report.raw_finding(pass_name, self.rel, lineno,
                                 fn.name if fn else None, message)

    def census(self, pass_name, entry):
        entry = dict(entry)
        entry["file"] = self.rel
        self._report.census(pass_name, entry)


class Report:
    def __init__(self):
        self.findings = []
        self.exemptions_used = []
        self.census_rows = {name: [] for name in PASSES}
        self.files = 0
        self.skipped_dirs = {}

    def raw_finding(self, pass_name, rel, lineno, function, message):
        self.findings.append({
            "pass": pass_name, "file": rel, "line": lineno,
            "function": function, "message": message,
        })

    def exempted(self, pass_name, rel, lineno, function, reason):
        self.exemptions_used.append({
            "pass": pass_name, "file": rel, "line": lineno,
            "function": function, "reason": reason,
        })

    def census(self, pass_name, entry):
        self.census_rows.setdefault(pass_name, []).append(entry)

    def to_json(self, root):
        return {
            "schema_version": 1,
            "tool": "compreg-analyze",
            "root": root,
            "passes": [
                {"name": name, "description": PASSES[name].DESCRIPTION}
                for name in sorted(PASSES)
            ],
            "files_audited": self.files,
            "skipped_dirs": [
                {"dir": d, "pass": p, "reason": r}
                for (d, p), r in sorted(self.skipped_dirs.items())
            ],
            "findings": self.findings,
            "exemptions": self.exemptions_used,
            "census": self.census_rows,
        }


def audit_files(files, root, report, passes=None):
    passes = passes or sorted(PASSES)
    for path in sorted(files):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        rel = os.path.normpath(os.path.relpath(path, root)).replace(
            os.sep, "/")
        ctx = AuditFile(path, rel, text, report)
        report.files += 1
        for name in passes:
            dir_reason = _dir_exemption(rel, name)
            if dir_reason is not None:
                report.skipped_dirs[dir_reason] = EXEMPT_DIRS[dir_reason]
                continue
            PASSES[name].run(ctx)
        for ex in ctx.exemptions:
            if not ex.used:
                ctx.census("driver", {
                    "kind": "unused-exemption", "pass": ex.pass_name,
                    "line": ex.line, "reason": ex.reason,
                })


def _dir_exemption(rel, pass_name):
    for (d, p), _ in EXEMPT_DIRS.items():
        if p == pass_name and (rel == d or rel.startswith(d + "/")):
            return (d, p)
    return None


def collect_files(targets, root):
    files = []
    for t in targets:
        if os.path.isfile(t):
            files.append(t)
        elif os.path.isdir(t):
            for dirpath, _dirnames, names in os.walk(t):
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(names)
                    if f.endswith((".h", ".cc", ".cpp", ".hpp"))
                )
        else:
            print(f"analyze: no such path: {t}", file=sys.stderr)
            sys.exit(64)
    return files


def print_report(report):
    for f in report.findings:
        fn = f" (in {f['function']})" if f["function"] else ""
        print(f"{f['file']}:{f['line']}: [{f['pass']}] {f['message']}{fn}")
    for (d, p), reason in sorted(report.skipped_dirs.items()):
        print(f"analyze: skipping {d}/ for pass `{p}` — {reason}")
    per_pass = {}
    for f in report.findings:
        per_pass[f["pass"]] = per_pass.get(f["pass"], 0) + 1
    ex_per_pass = {}
    for e in report.exemptions_used:
        ex_per_pass[e["pass"]] = ex_per_pass.get(e["pass"], 0) + 1
    print(f"analyze: {report.files} files, "
          f"{len(report.findings)} finding(s), "
          f"{len(report.exemptions_used)} exemption(s) honored")
    for name in sorted(PASSES):
        print(f"  {name:10s} findings {per_pass.get(name, 0):3d}  "
              f"exemptions {ex_per_pass.get(name, 0):3d}")


def self_test(root):
    """Seeded-mutant corpus: each mutant must be flagged by exactly its
    pass; the real trees must then audit clean."""
    corpus = os.path.join(root, "tests", "analyze", "mutants")
    if not os.path.isdir(corpus):
        print(f"analyze --self-test: corpus not found: {corpus}",
              file=sys.stderr)
        return 64
    failures = []
    for name in sorted(PASSES):
        mutant = os.path.join(corpus, f"mutant_{name}.h")
        if not os.path.isfile(mutant):
            failures.append(f"missing mutant for pass `{name}`: {mutant}")
            continue
        report = Report()
        audit_files([mutant], root, report)
        mine = [f for f in report.findings if f["pass"] == name]
        others = [f for f in report.findings if f["pass"] != name]
        if not mine:
            failures.append(
                f"mutant_{name}.h: pass `{name}` reported no finding")
        if others:
            for f in others:
                failures.append(
                    f"mutant_{name}.h: unexpected [{f['pass']}] finding "
                    f"at line {f['line']}: {f['message']}")
        if mine and not others:
            print(f"analyze --self-test: mutant_{name}.h flagged by "
                  f"`{name}` only ({len(mine)} finding(s)) ... OK")
    clean = Report()
    audit_files(
        collect_files([os.path.join(root, t) for t in DEFAULT_TREES], root),
        root, clean)
    if clean.findings:
        for f in clean.findings:
            failures.append(
                f"clean-tree sweep: {f['file']}:{f['line']}: "
                f"[{f['pass']}] {f['message']}")
    else:
        print(f"analyze --self-test: clean-tree sweep silent over "
              f"{clean.files} files ... OK")
    if failures:
        print("analyze --self-test FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("analyze --self-test OK: every mutant flagged by exactly its "
          "pass; clean tree silent")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="analyze",
        description="multi-pass static auditor for the implementation trees")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--json", metavar="FILE", default=None,
                    help="write machine-readable AUDIT.json here")
    ap.add_argument("--self-test", action="store_true",
                    help="audit the seeded-mutant corpus and the clean tree")
    ap.add_argument("--list-passes", action="store_true")
    ap.add_argument("--pass", dest="only_pass", default=None,
                    choices=sorted(PASSES), help="run a single pass")
    ap.add_argument("paths", nargs="*",
                    help=f"trees/files to audit (default: {DEFAULT_TREES})")
    args = ap.parse_args(argv)

    if args.list_passes:
        for name in sorted(PASSES):
            print(f"{name}: {PASSES[name].DESCRIPTION}")
        return 0
    if args.self_test:
        return self_test(args.root)

    targets = args.paths or [os.path.join(args.root, t)
                             for t in DEFAULT_TREES]
    report = Report()
    passes = [args.only_pass] if args.only_pass else None
    audit_files(collect_files(targets, args.root), args.root, report, passes)
    print_report(report)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json(os.path.abspath(args.root)), fh,
                      indent=1, sort_keys=False)
            fh.write("\n")
        print(f"analyze: wrote {args.json}")
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
