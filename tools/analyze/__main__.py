"""Entry point: `python3 tools/analyze [args]`."""

import sys

if __package__ in (None, ""):
    import os
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import driver  # noqa: E402

sys.exit(driver.main())
