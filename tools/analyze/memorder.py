"""memorder pass: memory-order census and justification audit.

ROADMAP item 1 (cache-aware native hot path) needs to start from
measured ground: which atomic operations run at which memory order,
and why. This pass walks every atomic operation in the audited trees
(`.load/.store/.exchange/.fetch_*/.compare_exchange_*/.test_and_set`,
plus `atomic_thread_fence` and `.clear(<order>)`) and:

  * flags operations with NO explicit order — they silently default to
    seq_cst, the most expensive fence on every architecture, and on a
    hot path that is either a bug or an undocumented decision;
  * flags WEAKENED orders (relaxed / acquire / release / acq_rel /
    consume) that carry no justification comment — a `//` comment of
    at least ten characters on the operation's own line(s) or the line
    directly above. Weak orders are exactly where the memory-model
    reasoning lives, and it must live in the source;
  * records EVERY operation in the census (file, line, op, order), so
    AUDIT.json carries the full memory-order map of the tree —
    explicit seq_cst is legitimate (it documents itself) and is
    census-only.

Constructors and destructors are census-only for the default-order
rule: pre-sharing initialization at seq_cst costs nothing measurable
and rewriting it to relaxed would manufacture justification comments
with no information in them.
"""

import bisect
import re

import cpplex

NAME = "memorder"
DESCRIPTION = ("memory-order audit: default-seq_cst atomics flagged, "
               "weakened orders require a justification comment; full "
               "census emitted")

_ATOMIC_OP = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set|wait|notify_one|notify_all)\s*\(|"
    r"\b(atomic_thread_fence)\s*\(|"
    r"(?:\.|->)\s*(clear)\s*\(\s*std::memory_order"
)
_ORDER = re.compile(r"\bmemory_order_(\w+)|\bmemory_order::(\w+)")
_WEAK_ORDERS = {"relaxed", "acquire", "release", "acq_rel", "consume"}
_MIN_JUSTIFICATION = 10

# Methods that only exist on std::atomic / atomic_flag when they take a
# memory_order; bare `.clear()` / `.wait()` on containers must not count.
_NEEDS_ORDER_ARG = {"clear", "wait", "notify_one", "notify_all"}


def _line_starts(clean):
    starts = [0]
    for i, c in enumerate(clean):
        if c == "\n":
            starts.append(i + 1)
    return starts


def _has_justification(src, first_line, last_line):
    """A `//` comment with >= _MIN_JUSTIFICATION chars of text on any
    line the call spans, or on the line directly above it."""
    for ln in range(max(1, first_line - 1), last_line + 1):
        raw = src.lines[ln - 1] if ln <= len(src.lines) else ""
        pos = raw.find("//")
        if pos < 0:
            continue
        body = raw[pos + 2:].strip()
        if len(body) >= _MIN_JUSTIFICATION:
            return True
    return False


def run(ctx):
    src = ctx.src
    clean = src.clean
    starts = _line_starts(clean)
    for m in _ATOMIC_OP.finditer(clean):
        op = m.group(1) or m.group(2) or m.group(3)
        lineno = bisect.bisect_right(starts, m.start())
        fn = src.enclosing_function(lineno)
        open_idx = clean.find("(", m.start())
        if open_idx < 0:
            continue
        end_idx, args = cpplex.balanced_args(clean, open_idx)
        last_line = bisect.bisect_right(starts, end_idx - 1)
        orders = [a or b for a, b in _ORDER.findall(args)]
        in_ctor = fn is None or src.is_ctor_or_dtor(fn)

        if not orders:
            if op in _NEEDS_ORDER_ARG:
                continue  # already guaranteed an order by the regex or
                # (for wait/notify) ambiguous with non-atomics: skip
            ctx.census(NAME, {"kind": "op", "line": lineno, "op": op,
                              "order": "seq_cst (default)"})
            if not in_ctor:
                ctx.finding(
                    NAME, lineno,
                    f".{op}() with no memory_order argument defaults to "
                    "seq_cst — state the order (and justify a weaker one "
                    "with a comment) so the cost is a decision, not an "
                    "accident")
            continue

        for order in orders:
            ctx.census(NAME, {"kind": "op", "line": lineno, "op": op,
                              "order": order})
        weak = [o for o in orders if o in _WEAK_ORDERS]
        if weak and not in_ctor:
            if not _has_justification(src, lineno, last_line):
                ctx.finding(
                    NAME, lineno,
                    f".{op}(memory_order_{weak[0]}) has no justification "
                    "comment — weakened orders are exactly where the "
                    "memory-model argument lives; write it next to the op")
