"""waitfree pass: static bounded-step progress audit.

The paper's contract is that every Read and Write finishes in a bounded
number of the caller's own steps. This pass flags the three static ways
a function can lose that bound:

  * unbounded loops — `for (;;)`, `while (true)`, loop conditions with
    no relational bound, do/while retry loops;
  * backward `goto` (a loop in disguise);
  * recursion cycles in the per-file static call graph (the composite
    Read's C-bounded recursion is real recursion — it must carry a
    written exemption saying why the depth is bounded).

Bounded shapes are recorded in the census instead of flagged:

  * counted `for` loops (non-empty condition AND increment clause);
  * range-for (bounded by the container);
  * `while`/`do` conditions containing a relational comparison
    (`<`, `<=`, `>`, `>=`) — heuristically bounded, recorded as such;
  * "asserted-bound" loops: an unbounded loop whose body contains a
    `COMPREG_CHECK(... < bound)` — the bound is enforced at runtime, so
    the census records it and the assert text documents it.

Everything else needs an `audit: exempt(waitfree, <reason>)`.
"""

import bisect
import re

import cpplex

NAME = "waitfree"
DESCRIPTION = ("bounded-step progress: unbounded loops, backward goto, "
               "recursion cycles in wait-free entry points")

_LOOP_KW = re.compile(r"\b(for|while|do|goto)\b")
_RELATIONAL = re.compile(r"[^<>=!](<=|>=|<|>)[^<>=]")
_CALL = re.compile(r"\b(\w+)\s*\(")
_CHECK = re.compile(r"\bCOMPREG_CHECK\s*\(")


def _line_starts(clean):
    starts = [0]
    for i, c in enumerate(clean):
        if c == "\n":
            starts.append(i + 1)
    return starts


def _line_of(starts, idx):
    return bisect.bisect_right(starts, idx)


def _skip_ws(clean, i):
    n = len(clean)
    while i < n and clean[i].isspace():
        i += 1
    return i


def _match_brace(clean, open_idx):
    depth = 0
    for i in range(open_idx, len(clean)):
        c = clean[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(clean) - 1


def _body_span(clean, after_idx):
    """Span of the statement following a loop header: a brace block or a
    single statement up to ';'."""
    i = _skip_ws(clean, after_idx)
    if i < len(clean) and clean[i] == "{":
        return i, _match_brace(clean, i) + 1
    j = clean.find(";", i)
    return i, (len(clean) if j < 0 else j + 1)


def _split_top_level(text, sep):
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def _has_asserted_bound(body):
    """True when the loop body contains a COMPREG_CHECK asserting a
    relational bound — the loop's bound is enforced at runtime."""
    for m in _CHECK.finditer(body):
        open_idx = body.find("(", m.end() - 1)
        if open_idx < 0:
            continue
        _, args = cpplex.balanced_args(body, open_idx)
        if re.search(r"<=|<|>=|>", args):
            return True
    return False


def run(ctx):
    src = ctx.src
    clean = src.clean
    starts = _line_starts(clean)
    consumed_whiles = set()

    for m in _LOOP_KW.finditer(clean):
        kw = m.group(1)
        lineno = _line_of(starts, m.start())
        fn = src.enclosing_function(lineno)
        if fn is None or src.is_ctor_or_dtor(fn):
            continue  # member decls can't loop; ctors run pre-sharing

        if kw == "goto":
            _audit_goto(ctx, src, clean, starts, m, lineno)
            continue

        if kw == "do":
            i = _skip_ws(clean, m.end())
            if i >= len(clean) or clean[i] != "{":
                continue  # `do` in an identifier-free context we don't parse
            close = _match_brace(clean, i)
            body = clean[i:close + 1]
            w = _skip_ws(clean, close + 1)
            if not clean.startswith("while", w):
                continue
            consumed_whiles.add(w)
            open_idx = clean.find("(", w)
            _, cond = cpplex.balanced_args(clean, open_idx)
            _classify_conditioned(ctx, lineno, "do/while", cond, body)
            continue

        open_idx = clean.find("(", m.end())
        if open_idx < 0 or clean[m.end():open_idx].strip():
            continue  # not a loop statement (e.g. `while` in a name)

        if kw == "while":
            if m.start() in consumed_whiles:
                continue
            end_idx, cond = cpplex.balanced_args(clean, open_idx)
            b0, b1 = _body_span(clean, end_idx)
            _classify_conditioned(ctx, lineno, "while", cond, clean[b0:b1])
            continue

        # for
        end_idx, args = cpplex.balanced_args(clean, open_idx)
        b0, b1 = _body_span(clean, end_idx)
        body = clean[b0:b1]
        if ":" in _strip_template_args(args) and ";" not in args:
            ctx.census(NAME, {"kind": "loop", "line": lineno,
                              "bound": "range-for"})
            continue
        parts = _split_top_level(args, ";")
        if len(parts) == 3 and parts[1].strip() and parts[2].strip():
            ctx.census(NAME, {"kind": "loop", "line": lineno,
                              "bound": "counted"})
            continue
        _report_unbounded(ctx, lineno, "for", args, body)

    _audit_recursion(ctx, src, clean, starts)


def _strip_template_args(text):
    return re.sub(r"<[^<>]*>", "", text)


def _classify_conditioned(ctx, lineno, shape, cond, body):
    cond_s = cond.strip()
    if cond_s in ("true", "1") or not cond_s:
        _report_unbounded(ctx, lineno, shape, cond, body)
        return
    if _RELATIONAL.search(" " + _strip_template_args(cond) + " "):
        ctx.census(NAME, {"kind": "loop", "line": lineno,
                          "bound": "relational-condition (heuristic)"})
        return
    _report_unbounded(ctx, lineno, shape, cond, body)


def _report_unbounded(ctx, lineno, shape, cond, body):
    if _has_asserted_bound(body):
        ctx.census(NAME, {"kind": "loop", "line": lineno,
                          "bound": "asserted (COMPREG_CHECK in body)"})
        return
    cond_s = " ".join(cond.split()) or "<empty>"
    ctx.finding(
        NAME, lineno,
        f"{shape} loop with no static bound (condition `{cond_s}`): "
        "wait-freedom requires bounded steps; bound it, assert the bound "
        "with COMPREG_CHECK, or exempt with a reason")


def _audit_goto(ctx, src, clean, starts, m, lineno):
    lbl = re.match(r"goto\s+(\w+)", clean[m.start():])
    if not lbl:
        return
    label = lbl.group(1)
    pat = re.compile(r"(?<![:\w])" + re.escape(label) + r"\s*:(?!:)")
    for lm in pat.finditer(clean):
        target_line = _line_of(starts, lm.start())
        if target_line <= lineno:
            ctx.finding(
                NAME, lineno,
                f"backward goto to `{label}:` (line {target_line}) forms "
                "an unbounded loop")
            return
    ctx.census(NAME, {"kind": "goto", "line": lineno, "bound": "forward"})


def _audit_recursion(ctx, src, clean, starts):
    """Per-file static call graph; cycles are findings.

    Edge rules, tuned so delegation does not read as recursion:
      * an unqualified call to a function defined in this file is an
        edge — except a same-name call with a different argument count,
        which is overload delegation, not self-recursion;
      * a qualified call `recv.f()` / `recv->f()` is an edge only when
        recv is `this` or a data member whose declared type mentions
        the enclosing record's own name (the composite's
        `std::unique_ptr<CompositeRegister> inner_` — genuinely
        recursive structure). Calls into members of OTHER types are the
        delegation idiom and bottom out in that type's own audit.
    """
    names = {s.name for s in src.fn_scopes
             if s.name and not src.is_ctor_or_dtor(s)}
    graph = {}
    anchor = {}  # name -> earliest definition line
    for s in src.fn_scopes:
        if not s.name or src.is_ctor_or_dtor(s):
            continue
        anchor.setdefault(s.name, s.start)
        anchor[s.name] = min(anchor[s.name], s.start)

    rec_members = _record_member_types(src)

    for m in _CALL.finditer(clean):
        callee = m.group(1)
        if callee not in names:
            continue
        lineno = _line_of(starts, m.start())
        fn = src.enclosing_function(lineno)
        if fn is None or fn.name is None or src.is_ctor_or_dtor(fn):
            continue
        # A token on the header line matching the function's own name is
        # (part of) the definition, not a call.
        if callee == fn.name and lineno <= fn.start:
            continue
        qual = re.search(r"(?:(\w+)\s*)?(->|\.)\s*$", clean[:m.start()])
        if qual:
            recv = qual.group(1)
            if recv != "this" and not _same_type_member(
                    src, rec_members, fn, recv):
                continue
        elif callee == fn.name:
            open_idx = clean.find("(", m.end() - 1)
            if open_idx >= 0 and (_arity(cpplex.balanced_args(
                    clean, open_idx)[1]) != _header_arity(fn.header)):
                continue  # overload delegation, not self-recursion
        graph.setdefault(fn.name, set()).add(callee)

    for cycle in _cycles(graph):
        first = min(cycle, key=lambda n: anchor.get(n, 1 << 30))
        path = " -> ".join(sorted(cycle, key=lambda n: anchor.get(n, 0)))
        ctx.finding(
            NAME, anchor.get(first, 1),
            f"recursion cycle in static call graph: {path}; unbounded "
            "recursion breaks wait-freedom — exempt with the bound "
            "argument if the depth is bounded by construction")


def _record_member_types(src):
    """record name -> {member name: declared type text}."""
    import layout as layout_pass
    out = {}
    for rname, rscope in src.records:
        types = out.setdefault(rname, {})
        for mem in layout_pass._parse_members(src, rscope):
            types[mem.name] = mem.type
    return out


def _same_type_member(src, rec_members, fn, recv):
    """True when `recv` is a data member of fn's record whose declared
    type mentions the record's own name (recursive structure)."""
    if recv is None:
        return False  # chained receiver expression: delegation
    rec = None
    for rname, rs in src.records:
        if rs.start <= fn.start <= rs.end:
            if rec is None or rs.start > rec[1].start:
                rec = (rname, rs)
    if rec is None:
        return False
    type_text = rec_members.get(rec[0], {}).get(recv)
    if type_text is None:
        return False
    return re.search(r"\b" + re.escape(rec[0]) + r"\b", type_text) is not None


def _arity(args_text):
    args_text = args_text.strip()
    if not args_text:
        return 0
    depth = 0
    count = 1
    for c in args_text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            count += 1
    return count


def _header_arity(header):
    open_idx = header.find("(")
    if open_idx < 0:
        return -1
    depth = 0
    for i in range(open_idx, len(header)):
        c = header[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return _arity(header[open_idx + 1:i])
    return _arity(header[open_idx + 1:])


def _cycles(graph):
    """Strongly connected components of size > 1, plus self-loops."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(v):
        work = [(v, iter(sorted(graph.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1 or node in graph.get(node, ()):
                    sccs.append(frozenset(scc))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sccs
