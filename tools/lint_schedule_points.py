#!/usr/bin/env python3
"""Static lint: shared-memory accesses must announce schedule points.

The simulator (sched/sim_scheduler.h) and every analysis built on it —
DPOR race reversal, dependence-aware sleep sets, class-orbit covering,
the conformance analyzer — see an execution ONLY through the labeled
sched::point()/sched::observe() calls that implementations interleave
with their shared-memory operations. A raw std::atomic op or mutex
acquisition with no schedule point in the same function is invisible to
the scheduler: schedules cannot preempt around it, DPOR cannot reverse
races through it, and a certificate produced over such code silently
under-approximates the schedule space.

This lint enforces the discipline mechanically over the implementation
trees (src/registers, src/baselines, src/net): every function whose
body performs a synchronization operation (atomic load/store/RMW,
mutex lock/unlock, lock_guard/unique_lock/scoped_lock construction)
must also contain at least one labeled schedule-point call
(sched::point / sched::observe) or a ScopedAccessObserver.

The comment/string-stripping lexer and brace-scope parser live in
tools/analyze/cpplex.py, shared with the multi-pass static auditor
(tools/analyze) that grew out of this lint.

Exemptions:
  - Constructors and destructors: they run before the object is shared
    (or after the last reader detaches), outside the scheduled region.
  - Functions carrying a `// sched-lint: exempt(<reason>)` marker on
    any line of their body or header. The reason is mandatory — an
    exemption without a written justification is itself a finding.

Usage:
  lint_schedule_points.py [--root DIR] [--self-test] [PATHS...]

Exit codes: 0 clean, 1 findings, 64 usage/internal error.
"""

import argparse
import os
import re
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "analyze"))

import cpplex  # noqa: E402

DEFAULT_TREES = ("src/registers", "src/baselines", "src/net")

# Directory-level exemptions: subtrees under the linted roots whose code
# deliberately runs OUTSIDE the simulated scheduler, where a labeled
# schedule point would be meaningless. The reason is mandatory and is
# printed whenever the subtree is skipped, so the exemption stays a
# visible, justified decision rather than a silent hole.
EXEMPT_DIRS = {
    "src/net/real": (
        "real-socket transport: this code runs in separate OS processes "
        "under real kernels and real clocks, below the Transport seam "
        "where the labeled-schedule-point discipline (and the DPOR "
        "certification built on it) stops by design; its verification "
        "story is verify_net_real chaos/kill-9 runs, not schedule-space "
        "exploration"
    ),
}

SYNC_OP = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"lock|unlock|try_lock)\s*\("
    r"|std::(lock_guard|unique_lock|scoped_lock)\b"
)

SCHED_POINT = re.compile(
    r"\bsched::(point|observe)\s*\(|\bScopedAccessObserver\b"
)

EXEMPT_MARKER = re.compile(r"sched-lint:\s*exempt\s*\(([^)]*)\)")
EXEMPT_NO_REASON = re.compile(r"sched-lint:\s*exempt(?!\s*\()")


def lint_file(path, text):
    findings = []
    src = cpplex.SourceFile(path, text)

    exempt_lines = {}
    for lineno, raw in enumerate(src.lines, 1):
        m = EXEMPT_MARKER.search(raw)
        if m:
            if not m.group(1).strip():
                findings.append(
                    (lineno, "sched-lint: exempt() marker has an empty "
                             "reason; justify the exemption")
                )
            exempt_lines[lineno] = m.group(1).strip()
        elif EXEMPT_NO_REASON.search(raw):
            findings.append(
                (lineno, "sched-lint: exempt marker without a (reason); "
                         "write sched-lint: exempt(<why>)")
            )

    for lineno, cl in enumerate(src.clean_lines, 1):
        for m in SYNC_OP.finditer(cl):
            fn = src.enclosing_function(lineno)
            if fn is None:
                findings.append(
                    (lineno,
                     f"synchronization op `{m.group(0).strip()}` outside "
                     "any recognized function scope")
                )
                continue
            if src.is_ctor_or_dtor(fn):
                continue  # ctor/dtor: runs outside the shared region
            # A marker inside the body, on the header line, or on the
            # line(s) directly above the function exempts it.
            if any(fn.start - 2 <= el <= fn.end for el in exempt_lines):
                continue
            if SCHED_POINT.search(src.function_body(fn)):
                continue
            findings.append(
                (lineno,
                 f"`{fn.name or fn.header[:40]}` performs "
                 f"`{m.group(0).strip()}` with no sched::point/"
                 "sched::observe in scope — invisible to the scheduler; "
                 "add a labeled point or sched-lint: exempt(<reason>)")
            )
            break  # one finding per op line is enough
    return findings


SELF_TEST_BAD = """
#include <atomic>
namespace compreg::registers {
class Sneaky {
 public:
  Sneaky() { v_.store(0); }                  // ctor: auto-exempt
  ~Sneaky() { (void)v_.load(); }             // dtor: auto-exempt
  int quiet_read() { return v_.load(); }     // FINDING: no point
  int loud_read() {
    sched::point(access_.read(0));
    return v_.load();
  }
  // sched-lint: exempt(writer-private maintenance, not shared state)
  void maintenance() { v_.exchange(1); }
 private:
  std::atomic<int> v_{0};
};
}  // namespace compreg::registers
"""


def self_test():
    findings = lint_file("<self-test>", SELF_TEST_BAD)
    bad = [f for f in findings if "quiet_read" in f[1]]
    extra = [f for f in findings if "quiet_read" not in f[1]]
    if len(bad) != 1 or extra:
        print("lint self-test FAILED:", file=sys.stderr)
        for lineno, msg in findings:
            print(f"  <self-test>:{lineno}: {msg}", file=sys.stderr)
        print(f"  expected exactly one finding (quiet_read), got "
              f"{len(bad)} + {len(extra)} others", file=sys.stderr)
        return 1
    print("lint self-test OK: seeded violation flagged, exemptions honored")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="lint a built-in seeded violation and exit")
    ap.add_argument("paths", nargs="*",
                    help=f"trees/files to lint (default: {DEFAULT_TREES})")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())

    def exempt_reason(path):
        rel = os.path.normpath(os.path.relpath(path, args.root))
        rel = rel.replace(os.sep, "/")
        for d, reason in EXEMPT_DIRS.items():
            if rel == d or rel.startswith(d + "/"):
                return d, reason
        return None

    targets = args.paths or [os.path.join(args.root, t) for t in DEFAULT_TREES]
    files = []
    skipped = {}
    for t in targets:
        if os.path.isfile(t):
            hit = exempt_reason(t)
            if hit:
                skipped[hit[0]] = hit[1]
            else:
                files.append(t)
        elif os.path.isdir(t):
            for dirpath, dirnames, names in os.walk(t):
                hit = exempt_reason(dirpath)
                if hit:
                    skipped[hit[0]] = hit[1]
                    dirnames[:] = []
                    continue
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(names)
                    if f.endswith((".h", ".cc", ".cpp", ".hpp"))
                )
        else:
            print(f"lint_schedule_points: no such path: {t}", file=sys.stderr)
            sys.exit(64)
    for d in sorted(skipped):
        print(f"lint_schedule_points: skipping {d}/ — {skipped[d]}")

    total = 0
    for path in sorted(files):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for lineno, msg in lint_file(path, text):
            print(f"{path}:{lineno}: {msg}")
            total += 1
    if total:
        print(f"lint_schedule_points: {total} finding(s)")
        sys.exit(1)
    print(f"lint_schedule_points: {len(files)} files clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
