#!/usr/bin/env python3
"""Static lint: shared-memory accesses must announce schedule points.

The simulator (sched/sim_scheduler.h) and every analysis built on it —
DPOR race reversal, dependence-aware sleep sets, class-orbit covering,
the conformance analyzer — see an execution ONLY through the labeled
sched::point()/sched::observe() calls that implementations interleave
with their shared-memory operations. A raw std::atomic op or mutex
acquisition with no schedule point in the same function is invisible to
the scheduler: schedules cannot preempt around it, DPOR cannot reverse
races through it, and a certificate produced over such code silently
under-approximates the schedule space.

This lint enforces the discipline mechanically over the implementation
trees (src/registers, src/baselines, src/net): every function whose
body performs a synchronization operation (atomic load/store/RMW,
mutex lock/unlock, lock_guard/unique_lock/scoped_lock construction)
must also contain at least one labeled schedule-point call
(sched::point / sched::observe) or a ScopedAccessObserver.

Exemptions:
  - Constructors and destructors: they run before the object is shared
    (or after the last reader detaches), outside the scheduled region.
  - Functions carrying a `// sched-lint: exempt(<reason>)` marker on
    any line of their body or header. The reason is mandatory — an
    exemption without a written justification is itself a finding.

Usage:
  lint_schedule_points.py [--root DIR] [--self-test] [PATHS...]

Exit codes: 0 clean, 1 findings, 64 usage/internal error.
"""

import argparse
import os
import re
import sys

DEFAULT_TREES = ("src/registers", "src/baselines", "src/net")

# Directory-level exemptions: subtrees under the linted roots whose code
# deliberately runs OUTSIDE the simulated scheduler, where a labeled
# schedule point would be meaningless. The reason is mandatory and is
# printed whenever the subtree is skipped, so the exemption stays a
# visible, justified decision rather than a silent hole.
EXEMPT_DIRS = {
    "src/net/real": (
        "real-socket transport: this code runs in separate OS processes "
        "under real kernels and real clocks, below the Transport seam "
        "where the labeled-schedule-point discipline (and the DPOR "
        "certification built on it) stops by design; its verification "
        "story is verify_net_real chaos/kill-9 runs, not schedule-space "
        "exploration"
    ),
}

SYNC_OP = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"lock|unlock|try_lock)\s*\("
    r"|std::(lock_guard|unique_lock|scoped_lock)\b"
)

SCHED_POINT = re.compile(
    r"\bsched::(point|observe)\s*\(|\bScopedAccessObserver\b"
)

EXEMPT_MARKER = re.compile(r"sched-lint:\s*exempt\s*\(([^)]*)\)")
EXEMPT_NO_REASON = re.compile(r"sched-lint:\s*exempt(?!\s*\()")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignas", "alignof", "decltype", "static_assert",
    "new", "delete", "throw", "case", "default", "co_return",
}

NON_FUNCTION_HEADS = re.compile(
    r"^\s*(namespace|struct|class|union|enum|extern)\b"
)


def strip_comments_and_strings(text):
    """Blank out comments and literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2 else c)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def function_name(header):
    """Identifier before the first top-level '(' of a scope header."""
    depth = 0
    for idx, ch in enumerate(header):
        if ch in "<[":
            depth += 1
        elif ch in ">]":
            depth = max(0, depth - 1)
        elif ch == "(" and depth == 0:
            m = re.search(r"([~\w:]+)\s*$", header[:idx])
            if not m:
                return None
            return m.group(1).split("::")[-1]
    return None


def parse_scopes(clean):
    """Brace-matched scopes: (header, is_function, name, start, end) line spans.

    A scope is function-like when its header ends in ')' (plus trailing
    specifiers), names a non-keyword identifier before its first '(',
    and is not a namespace/class/struct/enum/union head. Lambdas and
    uniform-init braces become non-function scopes; ops inside them
    attribute to the nearest enclosing function scope.
    """
    scopes = []
    stack = []  # (header, is_function, name, start_line)
    header_start = 0
    line = 1
    header_chars = []
    i, n = 0, len(clean)
    while i < n:
        c = clean[i]
        if c == "\n":
            line += 1
            header_chars.append(c)
        elif c == "{":
            header = "".join(header_chars).strip()
            # Constructor member-init lists re-open after ':'; keep the
            # whole header so the name extraction sees Foo::Foo(...).
            name = function_name(header)
            trimmed = re.sub(
                r"(\)|\bconst\b|\bnoexcept\b|\boverride\b|\bfinal\b|"
                r"->\s*[\w:<>,*&\s]+|:\s*[^{}]*)\s*$",
                ")",
                header,
            )
            is_fn = bool(
                header
                and not NON_FUNCTION_HEADS.search(header)
                and name
                and name.lstrip("~") not in CONTROL_KEYWORDS
                and trimmed.endswith(")")
                and "(" in header
            )
            stack.append((header, is_fn, name, line))
            header_chars = []
        elif c == "}":
            if stack:
                header, is_fn, name, start = stack.pop()
                scopes.append((header, is_fn, name, start, line))
            header_chars = []
        elif c in ";":
            header_chars = []
        else:
            header_chars.append(c)
        i += 1
    return scopes


def class_names(clean):
    return set(
        re.findall(r"\b(?:class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?(\w+)", clean)
    )


def lint_file(path, text):
    findings = []
    clean = strip_comments_and_strings(text)
    lines = text.splitlines()
    clean_lines = clean.splitlines()

    exempt_lines = {}
    for lineno, raw in enumerate(lines, 1):
        m = EXEMPT_MARKER.search(raw)
        if m:
            if not m.group(1).strip():
                findings.append(
                    (lineno, "sched-lint: exempt() marker has an empty "
                             "reason; justify the exemption")
                )
            exempt_lines[lineno] = m.group(1).strip()
        elif EXEMPT_NO_REASON.search(raw):
            findings.append(
                (lineno, "sched-lint: exempt marker without a (reason); "
                         "write sched-lint: exempt(<why>)")
            )

    scopes = parse_scopes(clean)
    ctors = class_names(clean)
    fn_scopes = [s for s in scopes if s[1]]

    def enclosing_function(lineno):
        best = None
        for header, _, name, start, end in fn_scopes:
            if start <= lineno <= end:
                if best is None or start > best[2]:
                    best = (header, name, start, end)
        return best

    for lineno, cl in enumerate(clean_lines, 1):
        for m in SYNC_OP.finditer(cl):
            fn = enclosing_function(lineno)
            if fn is None:
                findings.append(
                    (lineno,
                     f"synchronization op `{m.group(0).strip()}` outside "
                     "any recognized function scope")
                )
                continue
            header, name, start, end = fn
            if name and (name.lstrip("~") in ctors or name.startswith("~")):
                continue  # ctor/dtor: runs outside the shared region
            # A marker inside the body, on the header line, or on the
            # line(s) directly above the function exempts it.
            if any(start - 2 <= el <= end for el in exempt_lines):
                continue
            body = "\n".join(clean_lines[start - 1:end])
            if SCHED_POINT.search(body):
                continue
            findings.append(
                (lineno,
                 f"`{name or header[:40]}` performs "
                 f"`{m.group(0).strip()}` with no sched::point/"
                 "sched::observe in scope — invisible to the scheduler; "
                 "add a labeled point or sched-lint: exempt(<reason>)")
            )
            break  # one finding per op line is enough
    return findings


SELF_TEST_BAD = """
#include <atomic>
namespace compreg::registers {
class Sneaky {
 public:
  Sneaky() { v_.store(0); }                  // ctor: auto-exempt
  ~Sneaky() { (void)v_.load(); }             // dtor: auto-exempt
  int quiet_read() { return v_.load(); }     // FINDING: no point
  int loud_read() {
    sched::point(access_.read(0));
    return v_.load();
  }
  // sched-lint: exempt(writer-private maintenance, not shared state)
  void maintenance() { v_.exchange(1); }
 private:
  std::atomic<int> v_{0};
};
}  // namespace compreg::registers
"""


def self_test():
    findings = lint_file("<self-test>", SELF_TEST_BAD)
    bad = [f for f in findings if "quiet_read" in f[1]]
    extra = [f for f in findings if "quiet_read" not in f[1]]
    if len(bad) != 1 or extra:
        print("lint self-test FAILED:", file=sys.stderr)
        for lineno, msg in findings:
            print(f"  <self-test>:{lineno}: {msg}", file=sys.stderr)
        print(f"  expected exactly one finding (quiet_read), got "
              f"{len(bad)} + {len(extra)} others", file=sys.stderr)
        return 1
    print("lint self-test OK: seeded violation flagged, exemptions honored")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="lint a built-in seeded violation and exit")
    ap.add_argument("paths", nargs="*",
                    help=f"trees/files to lint (default: {DEFAULT_TREES})")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())

    def exempt_reason(path):
        rel = os.path.normpath(os.path.relpath(path, args.root))
        rel = rel.replace(os.sep, "/")
        for d, reason in EXEMPT_DIRS.items():
            if rel == d or rel.startswith(d + "/"):
                return d, reason
        return None

    targets = args.paths or [os.path.join(args.root, t) for t in DEFAULT_TREES]
    files = []
    skipped = {}
    for t in targets:
        if os.path.isfile(t):
            hit = exempt_reason(t)
            if hit:
                skipped[hit[0]] = hit[1]
            else:
                files.append(t)
        elif os.path.isdir(t):
            for dirpath, dirnames, names in os.walk(t):
                hit = exempt_reason(dirpath)
                if hit:
                    skipped[hit[0]] = hit[1]
                    dirnames[:] = []
                    continue
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(names)
                    if f.endswith((".h", ".cc", ".cpp", ".hpp"))
                )
        else:
            print(f"lint_schedule_points: no such path: {t}", file=sys.stderr)
            sys.exit(64)
    for d in sorted(skipped):
        print(f"lint_schedule_points: skipping {d}/ — {skipped[d]}")

    total = 0
    for path in sorted(files):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for lineno, msg in lint_file(path, text):
            print(f"{path}:{lineno}: {msg}")
            total += 1
    if total:
        print(f"lint_schedule_points: {total} finding(s)")
        sys.exit(1)
    print(f"lint_schedule_points: {len(files)} files clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
