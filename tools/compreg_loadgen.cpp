// compreg_loadgen: multi-client soak driver for the register service.
//
// The harness owns the whole stack: it spawns the 2f+1 replica fleet
// (re-executing itself with --replica, like verify_net_real), spawns a
// compreg_server daemon fronting that fleet, and then drives N
// concurrent client connections (ServerClient, UDS or TCP) with a mixed
// write/read workload while optionally SIGKILLing and restarting fleet
// replicas mid-traffic.
//
// Every operation is recorded in a global logical-clock history and the
// run is certified, not just measured:
//
//   * the funneled atomicity checker (lin/register_checker.h): the
//     server assigns every write a timestamp from one monotone
//     sequence, so timestamp order must be a valid serialization of the
//     client-observed intervals, and reads must be regular with no
//     new-old inversion;
//   * value integrity: payloads encode (client id, op seq), so every
//     timestamp must map to exactly one value and every read must
//     return the exact bits of the write that owns its timestamp;
//   * crash-awareness: a write whose response was lost (timeout) may
//     still take effect — it is resolved from straggler responses or
//     from reads that reveal its value, and enters the history as a
//     *pending* write (end = kPendingEnd) rather than being dropped;
//   * graceful degradation: Busy (admission control) and Unavailable
//     (spent fleet retry budget) are typed, counted, and bounded — a
//     hang trips the watchdog, exit 2;
//   * the server's own telemetry must survive shutdown with the
//     conservation invariant intact (parsed from its stats file), and a
//     final probe read must observe at least the largest acknowledged
//     write timestamp (end-to-end durability through kill-9 cycles).
//
// `--bench-json FILE` additionally emits BENCH_server.json
// (schema_version 1, validated by tools/check_bench_schema.py).
//
// Exit codes: 0 clean, 1 violation (artifact written), 2 watchdog hang,
// 64 usage.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lin/history.h"
#include "lin/register_checker.h"
#include "net/net_plan.h"
#include "net/real/supervisor.h"
#include "net/real/transport.h"
#include "net/real/wire.h"
#include "server/client.h"
#include "server/protocol.h"
#include "util/rng.h"
#include "fleet_common.h"
#include "verify_common.h"

namespace {

using compreg::lin::kPendingEnd;
using compreg::lin::LogicalClock;
using compreg::lin::RegisterHistory;
using compreg::lin::RegRead;
using compreg::lin::RegWrite;
using compreg::net::NetFaultPlan;
using compreg::net::real::MsgType;
using compreg::net::real::TransportKind;
using compreg::net::real::WireMsg;
using compreg::server::ClientConfig;
using compreg::server::make_read_req;
using compreg::server::make_write_req;
using compreg::server::ServerClient;
using compreg::tools::Artifact;
using compreg::tools::epoch_to_ns;
using compreg::tools::Fleet;
using compreg::tools::FleetConfig;
using compreg::tools::kExitUsage;
using compreg::tools::kExitViolation;
using compreg::tools::LiveState;
using compreg::tools::run_replica_child;
using compreg::tools::SteadyPoint;
using compreg::tools::Watchdog;
using compreg::tools::write_artifact;
using compreg::Rng;

// ---------------------------------------------------------------------------
// Options

struct Options {
  int f = 1;
  TransportKind kind = TransportKind::kUds;
  int base_port = 47900;   // fleet-facing
  int front_port = 47950;  // client-facing (TCP only)
  std::string dir;         // empty: mkdtemp under /tmp
  std::string plan_text;   // socket-level fault plan (replicas + server)
  int clients = 8;
  std::uint64_t ops = 100;  // per client
  unsigned write_pct = 20;
  int kills = 0;
  std::uint64_t seed = 1;
  unsigned attempt_ms = 100;
  unsigned max_attempts = 8;
  std::uint32_t max_inflight = 128;
  unsigned op_timeout_ms = 10000;
  unsigned watchdog_sec = 300;
  std::string bench_json;
  std::string server_bin;  // default: <dir of this binary>/compreg_server
  Artifact artifact;

  int replicas() const { return 2 * f + 1; }
  const char* kind_name() const {
    return kind == TransportKind::kTcp ? "tcp" : "uds";
  }
  FleetConfig fleet_config() const {
    FleetConfig cfg;
    cfg.f = f;
    cfg.kind = kind;
    cfg.base_port = base_port;
    cfg.dir = dir;
    cfg.plan_text = plan_text;
    cfg.seed = seed;
    return cfg;
  }
};

std::string replay_command(const Options& opt) {
  std::ostringstream os;
  os << "compreg_loadgen --f " << opt.f << " --kind " << opt.kind_name()
     << " --clients " << opt.clients << " --ops " << opt.ops
     << " --write-pct " << opt.write_pct << " --kills " << opt.kills
     << " --seed " << opt.seed << " --max-inflight " << opt.max_inflight;
  if (!opt.plan_text.empty()) os << " --plan '" << opt.plan_text << "'";
  os << "  # wall-clock soak: replays the scenario, not the schedule";
  return os.str();
}

std::string default_server_bin() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "compreg_server";
  buf[n] = '\0';
  std::string path(buf);
  const auto slash = path.rfind('/');
  if (slash == std::string::npos) return "compreg_server";
  return path.substr(0, slash) + "/compreg_server";
}

// Payloads encode their writer: val = (client id << 32) | op seq. The
// initial value 0 decodes to client 0, which is the server itself and
// never a workload client, so it can't collide with a real write.
std::uint64_t encode_val(std::uint32_t client, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(client) << 32) |
         (seq & 0xffffffffull);
}

// ---------------------------------------------------------------------------
// Client workers

struct LostWrite {
  std::uint64_t seq = 0;
  std::uint64_t val = 0;
  std::uint64_t start = 0;
  bool resolved = false;
};

struct ReadRec {
  RegRead read;
  std::uint64_t val = 0;
};

struct ClientOut {
  std::vector<RegWrite> writes;  // resolved: server timestamp known
  std::vector<std::uint64_t> write_vals;  // parallel to `writes`
  std::vector<ReadRec> reads;
  std::vector<LostWrite> lost_writes;
  std::vector<std::uint64_t> latencies_ns;  // completed (Ok) ops only
  std::uint64_t busy = 0;
  std::uint64_t unavailable_writes = 0;
  std::uint64_t unavailable_reads = 0;
  std::uint64_t read_timeouts = 0;
  std::uint64_t proto_errors = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t max_acked_ts = 0;  // largest ts any kWriteOk carried
  bool connect_failed = false;
};

ClientConfig client_config(const Options& opt, const std::string& front_dir,
                           std::uint32_t id) {
  ClientConfig cfg;
  cfg.kind = opt.kind;
  cfg.front_dir = front_dir;
  cfg.front_base_port = opt.front_port;
  cfg.id = id;
  return cfg;
}

void client_main(const Options& opt, const std::string& front_dir,
                 std::uint32_t id, LogicalClock& clock,
                 std::atomic<std::uint64_t>& progress,
                 std::atomic<std::uint64_t>& ops_done, ClientOut& out) {
  ServerClient cli(client_config(opt, front_dir, id));
  if (!cli.connect(std::chrono::milliseconds(15000))) {
    out.connect_failed = true;
    ops_done.fetch_add(opt.ops, std::memory_order_relaxed);
    return;
  }
  Rng rng(compreg::tools::mix_seed(opt.seed, 1000 + static_cast<int>(id)));
  // Straggler responses, by op seq: an op we already timed out may still
  // be answered on this connection; its response is mined afterwards so
  // a lost-but-applied write re-enters the history as pending.
  std::unordered_map<std::uint64_t, WireMsg> stale;

  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < opt.ops; ++i) {
    const bool is_write = (rng() % 100) < opt.write_pct;
    ++seq;
    const std::uint64_t val = encode_val(id, seq);
    const WireMsg req =
        is_write ? make_write_req(id, seq, val) : make_read_req(id, seq);

    const std::uint64_t start = clock.tick();
    const auto t0 = std::chrono::steady_clock::now();
    if (!cli.send(req)) {
      ++out.disconnects;
      if (!cli.connect(std::chrono::milliseconds(10000)) || !cli.send(req)) {
        out.connect_failed = true;
        ops_done.fetch_add(opt.ops - i, std::memory_order_relaxed);
        return;
      }
    }

    const auto deadline = t0 + std::chrono::milliseconds(opt.op_timeout_ms);
    std::optional<WireMsg> resp;
    while (true) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      auto m = cli.recv(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now));
      if (!m) {
        if (!cli.connected()) {
          ++out.disconnects;
          if (!cli.connect(std::chrono::milliseconds(10000))) {
            out.connect_failed = true;
            ops_done.fetch_add(opt.ops - i, std::memory_order_relaxed);
            return;
          }
        }
        break;  // timed out (or reconnected: response is gone anyway)
      }
      if (m->op == seq) {
        resp = *m;
        break;
      }
      stale.emplace(m->op, *m);  // straggler from an earlier timed-out op
    }

    const std::uint64_t end = clock.tick();
    const auto t1 = std::chrono::steady_clock::now();
    if (!resp) {
      if (is_write) {
        out.lost_writes.push_back(LostWrite{seq, val, start, false});
      } else {
        ++out.read_timeouts;
      }
    } else {
      switch (resp->type) {
        case MsgType::kWriteOk:
          if (!is_write) {
            ++out.proto_errors;
            break;
          }
          out.writes.push_back(RegWrite{resp->ts, start, end});
          out.write_vals.push_back(val);
          out.max_acked_ts = std::max(out.max_acked_ts, resp->ts);
          out.latencies_ns.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
          break;
        case MsgType::kReadOk:
          if (is_write) {
            ++out.proto_errors;
            break;
          }
          out.reads.push_back(
              ReadRec{RegRead{resp->ts, start, end}, resp->val});
          out.latencies_ns.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
          break;
        case MsgType::kUnavailableResp:
          if (is_write) {
            // The assigned timestamp rode along: the write may yet take
            // effect, so it enters the history pending, exactly like a
            // crashed writer's abandoned operation.
            out.writes.push_back(RegWrite{resp->ts, start, kPendingEnd});
            out.write_vals.push_back(val);
            ++out.unavailable_writes;
          } else {
            ++out.unavailable_reads;
          }
          break;
        case MsgType::kBusyResp:
          // Rejected before any fleet traffic: no timestamp, no effect,
          // no history record.
          ++out.busy;
          break;
        default:
          ++out.proto_errors;
          break;
      }
    }
    progress.fetch_add(1, std::memory_order_relaxed);
    ops_done.fetch_add(1, std::memory_order_relaxed);
  }

  // Drain stragglers briefly, then resolve lost writes whose responses
  // eventually arrived: either outcome (Ok or Unavailable) proves the
  // server assigned a timestamp, so the write is recorded pending (its
  // client-observed interval never closed).
  const auto drain_until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  while (cli.connected() && std::chrono::steady_clock::now() < drain_until) {
    auto m = cli.recv(std::chrono::milliseconds(50));
    if (!m) break;
    stale.emplace(m->op, *m);
  }
  for (LostWrite& lost : out.lost_writes) {
    const auto it = stale.find(lost.seq);
    if (it == stale.end()) continue;
    const WireMsg& m = it->second;
    if (m.type != MsgType::kWriteOk && m.type != MsgType::kUnavailableResp) {
      continue;
    }
    out.writes.push_back(RegWrite{m.ts, lost.start, kPendingEnd});
    out.write_vals.push_back(lost.val);
    if (m.type == MsgType::kWriteOk) {
      out.max_acked_ts = std::max(out.max_acked_ts, m.ts);
    }
    lost.resolved = true;
  }
}

// ---------------------------------------------------------------------------
// Server stats file (written by compreg_server at shutdown)

struct ServerStats {
  bool found = false;
  bool conservation_ok = false;
  std::uint64_t busy = 0;
  std::uint64_t batch_rounds = 0;
  std::uint64_t batched_reads = 0;
  std::uint64_t batch_count = 0;
  double batch_mean = 0;
};

ServerStats parse_server_stats(const std::string& path) {
  ServerStats st;
  std::ifstream in(path);
  if (!in) return st;
  st.found = true;
  std::string line;
  while (std::getline(in, line)) {
    unsigned long long v = 0;
    unsigned long long cnt = 0;
    unsigned long long sum = 0;
    double mean = 0;
    if (std::sscanf(line.c_str(), "counter busy %llu", &v) == 1) {
      st.busy = v;
    } else if (std::sscanf(line.c_str(), "counter batch_rounds %llu", &v) ==
               1) {
      st.batch_rounds = v;
    } else if (std::sscanf(line.c_str(), "counter batched_reads %llu", &v) ==
               1) {
      st.batched_reads = v;
    } else if (std::sscanf(line.c_str(),
                           "histo batch_occupancy count=%llu sum=%llu "
                           "mean=%lf",
                           &cnt, &sum, &mean) == 3) {
      st.batch_count = cnt;
      st.batch_mean = mean;
    } else if (line == "conservation OK") {
      st.conservation_ok = true;
    }
  }
  return st;
}

double percentile_us(std::vector<std::uint64_t>& ns, double q) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(ns.size() - 1));
  return static_cast<double>(ns[idx]) / 1000.0;
}

// ---------------------------------------------------------------------------
// The soak run

int run_soak(const Options& opt, LiveState& live,
             std::atomic<std::uint64_t>& progress) {
  const SteadyPoint epoch = std::chrono::steady_clock::now();
  live.set(opt.seed, "", opt.plan_text);

  Fleet fleet(opt.fleet_config(), epoch);
  if (!fleet.start()) return kExitViolation;
  if (!fleet.wait_all_serving(std::chrono::milliseconds(15000))) {
    write_artifact(opt.artifact, "fleet startup failure", opt.seed, "",
                   opt.plan_text, "", replay_command(opt),
                   "a replica never logged 'serving' within 15s of spawn",
                   nullptr);
    return kExitViolation;
  }
  progress.fetch_add(1);

  const std::string front_dir = fleet.dir() + "/front";
  const std::string stats_path = fleet.dir() + "/server_stats.txt";
  const int server_node = opt.replicas();  // supervisor slot, not a replica
  {
    std::vector<std::string> argv = {
        opt.server_bin,
        "--kind", opt.kind_name(),
        "--f", std::to_string(opt.f),
        "--dir", fleet.dir(),
        "--front-dir", front_dir,
        "--base-port", std::to_string(opt.base_port),
        "--front-port", std::to_string(opt.front_port),
        "--max-inflight", std::to_string(opt.max_inflight),
        "--attempt-ms", std::to_string(opt.attempt_ms),
        "--max-attempts", std::to_string(opt.max_attempts),
        "--seed", std::to_string(opt.seed),
        "--epoch-ns", std::to_string(epoch_to_ns(epoch)),
        "--stats-out", stats_path,
    };
    if (!opt.plan_text.empty()) {
      argv.push_back("--plan");
      argv.push_back(opt.plan_text);
    }
    fleet.sup().spawn(server_node, argv);
  }

  // Warmup probe: the server is up once a read round-trips. Busy and
  // timeouts are retried — the daemon may still be seeding its write
  // timestamp from the initial collect.
  {
    ServerClient probe(client_config(opt, front_dir, 1000000));
    bool up = false;
    if (probe.connect(std::chrono::milliseconds(15000))) {
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::seconds(15);
      std::uint64_t probe_seq = 0;
      while (std::chrono::steady_clock::now() < until) {
        if (!probe.send(make_read_req(1000000, ++probe_seq))) break;
        auto m = probe.recv(std::chrono::milliseconds(1000));
        if (m && m->op == probe_seq && m->type == MsgType::kReadOk) {
          up = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    if (!up) {
      write_artifact(opt.artifact, "server startup failure", opt.seed, "",
                     opt.plan_text, "", replay_command(opt),
                     "no ReadOk from the daemon within 15s of spawn",
                     nullptr);
      return kExitViolation;
    }
  }
  progress.fetch_add(1);
  std::printf("loadgen: fleet + server up (kind=%s f=%d), driving %d "
              "clients x %" PRIu64 " ops\n",
              opt.kind_name(), opt.f, opt.clients, opt.ops);

  LogicalClock clock;
  std::atomic<std::uint64_t> ops_done{0};
  std::vector<ClientOut> outs(static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opt.clients));
  const auto t_start = std::chrono::steady_clock::now();
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      client_main(opt, front_dir, static_cast<std::uint32_t>(c + 1), clock,
                  progress, ops_done, outs[static_cast<std::size_t>(c)]);
    });
  }

  // Kill-9 chaos over the fleet (never the server): spread cycles across
  // the op stream, wait for each victim's rejoin before the next.
  std::vector<std::string> findings;
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(opt.clients) * opt.ops;
  for (int k = 0; k < opt.kills; ++k) {
    const std::uint64_t threshold =
        total_ops * static_cast<std::uint64_t>(k + 1) /
        static_cast<std::uint64_t>(opt.kills + 1);
    while (ops_done.load(std::memory_order_relaxed) < threshold) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const int victim = k % opt.replicas();
    const int seen = fleet.serving_count(victim);
    std::printf("loadgen: kill-9 cycle %d/%d -> replica %d\n", k + 1,
                opt.kills, victim);
    fleet.sup().kill9(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));  // downtime
    fleet.spawn(victim);
    progress.fetch_add(1);
    if (!fleet.wait_serving(victim, seen + 1,
                            std::chrono::milliseconds(30000))) {
      std::ostringstream os;
      os << "recovery: replica " << victim
         << " did not rejoin (no new 'serving' line) within 30s of restart";
      findings.push_back(os.str());
      break;
    }
    progress.fetch_add(1);
  }

  for (std::thread& t : threads) t.join();
  const auto t_end = std::chrono::steady_clock::now();

  // Global resolution: one timestamp, one value. Writes we know the
  // timestamp of (acked, degraded, or mined) pin ts -> val; a read that
  // returns a ts no write claims must decode to a client's unresolved
  // lost write, which it thereby resolves (pending). Anything else is
  // corruption or fabrication.
  std::map<std::uint64_t, std::uint64_t> ts_to_val;
  for (const ClientOut& out : outs) {
    for (std::size_t i = 0; i < out.writes.size(); ++i) {
      const auto [it, inserted] =
          ts_to_val.emplace(out.writes[i].id, out.write_vals[i]);
      if (!inserted && it->second != out.write_vals[i]) {
        findings.push_back("integrity: server assigned timestamp " +
                           std::to_string(out.writes[i].id) +
                           " to two different writes");
      }
    }
  }
  RegisterHistory history;
  for (const ClientOut& out : outs) {
    history.writes.insert(history.writes.end(), out.writes.begin(),
                          out.writes.end());
  }
  std::uint64_t value_mismatches = 0;
  std::uint64_t unknown_values = 0;
  for (ClientOut& out : outs) {
    for (const ReadRec& rec : out.reads) {
      const std::uint64_t ts = rec.read.id;
      const std::uint64_t val = rec.val;
      if (ts == 0) {
        if (val != 0) ++value_mismatches;
        history.reads.push_back(rec.read);
        continue;
      }
      const auto it = ts_to_val.find(ts);
      if (it != ts_to_val.end()) {
        if (it->second != val) ++value_mismatches;
        history.reads.push_back(rec.read);
        continue;
      }
      // Unclaimed timestamp: the value names its writer.
      const auto cid = static_cast<std::uint32_t>(val >> 32);
      const std::uint64_t wseq = val & 0xffffffffull;
      bool revealed = false;
      if (cid >= 1 && cid <= static_cast<std::uint32_t>(opt.clients)) {
        ClientOut& owner = outs[cid - 1];
        for (LostWrite& lost : owner.lost_writes) {
          if (!lost.resolved && lost.seq == wseq && lost.val == val) {
            history.writes.push_back(RegWrite{ts, lost.start, kPendingEnd});
            ts_to_val.emplace(ts, val);
            lost.resolved = true;
            revealed = true;
            break;
          }
        }
      }
      if (!revealed) ++unknown_values;
      history.reads.push_back(rec.read);
    }
  }
  if (value_mismatches != 0) {
    findings.push_back("integrity: " + std::to_string(value_mismatches) +
                       " reads returned a value not written at their "
                       "timestamp");
  }
  if (unknown_values != 0) {
    findings.push_back("integrity: " + std::to_string(unknown_values) +
                       " reads returned a value no client ever wrote");
  }

  // Tallies.
  std::uint64_t writes_ok = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t proto_errors = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t max_acked = 0;
  int failed_clients = 0;
  std::vector<std::uint64_t> latencies;
  for (const ClientOut& out : outs) {
    reads_ok += out.reads.size();
    busy += out.busy;
    unavailable += out.unavailable_writes + out.unavailable_reads;
    timeouts += out.read_timeouts;
    for (const LostWrite& lost : out.lost_writes) {
      if (!lost.resolved) ++timeouts;
    }
    proto_errors += out.proto_errors;
    disconnects += out.disconnects;
    max_acked = std::max(max_acked, out.max_acked_ts);
    if (out.connect_failed) ++failed_clients;
    latencies.insert(latencies.end(), out.latencies_ns.begin(),
                     out.latencies_ns.end());
  }
  for (const ClientOut& out : outs) {
    for (const RegWrite& w : out.writes) {
      if (w.end != kPendingEnd) ++writes_ok;
    }
  }
  if (failed_clients != 0) {
    findings.push_back("connectivity: " + std::to_string(failed_clients) +
                       " clients could not (re)connect to the daemon");
  }
  if (proto_errors != 0) {
    findings.push_back("protocol: " + std::to_string(proto_errors) +
                       " responses of the wrong type for their request");
  }
  if (timeouts * 20 > total_ops) {  // > 5%
    findings.push_back("liveness: " + std::to_string(timeouts) + " of " +
                       std::to_string(total_ops) +
                       " ops got no response within " +
                       std::to_string(opt.op_timeout_ms) + "ms (> 5%)");
  }

  // Durability probe: with the full fleet back, a fresh read must see at
  // least the largest acknowledged write timestamp — through every
  // kill-9 cycle. (Also exercises batched reads' freshness end-to-end.)
  if (max_acked > 0) {
    ServerClient probe(client_config(opt, front_dir, 1000001));
    std::uint64_t seen_ts = 0;
    bool got = false;
    if (probe.connect(std::chrono::milliseconds(5000))) {
      std::uint64_t probe_seq = 0;
      for (int attempt = 0; attempt < 20 && !got; ++attempt) {
        if (!probe.send(make_read_req(1000001, ++probe_seq))) break;
        auto m = probe.recv(std::chrono::milliseconds(2000));
        if (m && m->op == probe_seq && m->type == MsgType::kReadOk) {
          seen_ts = m->ts;
          got = true;
        }
      }
    }
    if (!got) {
      findings.push_back("durability: the post-run probe read never "
                         "completed against a full fleet");
    } else if (seen_ts < max_acked) {
      findings.push_back("durability: probe read returned ts " +
                         std::to_string(seen_ts) +
                         " < largest acknowledged write ts " +
                         std::to_string(max_acked));
    }
  }
  progress.fetch_add(1);

  // Graceful server shutdown: SIGTERM -> drain -> stats file.
  fleet.sup().terminate(server_node, std::chrono::milliseconds(15000));
  fleet.sup().terminate_all(std::chrono::milliseconds(2000));
  const ServerStats st = parse_server_stats(stats_path);
  if (!st.found) {
    findings.push_back("telemetry: the daemon wrote no stats file (crashed "
                       "or SIGKILLed before drain)");
  } else if (!st.conservation_ok) {
    findings.push_back("telemetry: conservation violated (ops_received != "
                       "writes_ok + reads_ok + unavailable + busy)");
  }

  // Certification: funneled atomicity over the assembled history.
  const auto lin = compreg::lin::check_register_atomicity_funneled(history);
  if (!lin.ok) findings.push_back("linearizability: " + lin.violation);

  const double secs = std::chrono::duration<double>(t_end - t_start).count();
  const std::uint64_t completed = writes_ok + reads_ok + unavailable + busy;
  const double thr = secs > 0 ? static_cast<double>(completed) / secs : 0;
  const double p50 = percentile_us(latencies, 0.50);
  const double p99 = percentile_us(latencies, 0.99);
  const double p999 = percentile_us(latencies, 0.999);
  std::printf("history: writes=%" PRIu64 " reads=%" PRIu64
              " (unavailable %" PRIu64 ", busy %" PRIu64 ", timeouts %" PRIu64
              ", disconnects %" PRIu64 ")\n",
              static_cast<std::uint64_t>(history.writes.size()),
              static_cast<std::uint64_t>(history.reads.size()), unavailable,
              busy, timeouts, disconnects);
  std::printf("lin: %s\n", lin.ok ? "OK" : lin.violation.c_str());
  std::printf("telemetry conservation: %s\n",
              st.found && st.conservation_ok ? "OK" : "VIOLATION");
  std::printf("soak: %" PRIu64 " ops in %.2fs = %.0f ops/s, p50=%.0fus "
              "p99=%.0fus p999=%.0fus, batch mean=%.2f over %" PRIu64
              " rounds\n",
              completed, secs, thr, p50, p99, p999, st.batch_mean,
              st.batch_rounds);

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.bench_json.c_str());
      return kExitViolation;
    }
    out << "{\n  \"schema_version\": 1,\n  \"bench\": \"server\",\n"
        << "  \"rows\": [\n    {\"experiment\": \"E20\", \"kind\": \""
        << opt.kind_name() << "\", \"clients\": " << opt.clients
        << ", \"write_pct\": " << opt.write_pct << ", \"ops\": " << completed
        << ", \"secs\": " << secs << ", \"throughput_ops_per_s\": " << thr
        << ", \"p50_us\": " << p50 << ", \"p99_us\": " << p99
        << ", \"p999_us\": " << p999 << ", \"writes_ok\": " << writes_ok
        << ", \"reads_ok\": " << reads_ok
        << ", \"unavailable\": " << unavailable << ", \"unavailable_rate\": "
        << (completed > 0
                ? static_cast<double>(unavailable) /
                      static_cast<double>(completed)
                : 0)
        << ", \"busy\": " << busy << ", \"timeouts\": " << timeouts
        << ", \"batch_occupancy_mean\": " << st.batch_mean
        << ", \"batch_rounds\": " << st.batch_rounds
        << ", \"kills\": " << opt.kills << "}\n  ]\n}\n";
    std::printf("bench: wrote %s\n", opt.bench_json.c_str());
  }

  if (!findings.empty()) {
    std::ostringstream dump;
    for (const std::string& f : findings) dump << f << "\n";
    write_artifact(opt.artifact, "violation", opt.seed, "", opt.plan_text, "",
                   replay_command(opt), findings.front(), nullptr,
                   dump.str());
    std::printf("compreg_loadgen: FAIL (%zu finding%s)\n", findings.size(),
                findings.size() == 1 ? "" : "s");
    return kExitViolation;
  }
  std::printf("compreg_loadgen: PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--replica")) {
    return run_replica_child(argc, argv);
  }

  Options opt;
  opt.artifact.tool = "compreg_loadgen";
  opt.artifact.path = "compreg_loadgen_failure.txt";
  opt.server_bin = default_server_bin();
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--f")) {
      opt.f = std::atoi(next("--f"));
    } else if (!std::strcmp(argv[i], "--kind")) {
      opt.kind = !std::strcmp(next("--kind"), "tcp") ? TransportKind::kTcp
                                                     : TransportKind::kUds;
    } else if (!std::strcmp(argv[i], "--base-port")) {
      opt.base_port = std::atoi(next("--base-port"));
    } else if (!std::strcmp(argv[i], "--front-port")) {
      opt.front_port = std::atoi(next("--front-port"));
    } else if (!std::strcmp(argv[i], "--dir")) {
      opt.dir = next("--dir");
    } else if (!std::strcmp(argv[i], "--plan")) {
      opt.plan_text = next("--plan");
    } else if (!std::strcmp(argv[i], "--clients")) {
      opt.clients = std::atoi(next("--clients"));
    } else if (!std::strcmp(argv[i], "--ops")) {
      opt.ops = std::strtoull(next("--ops"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--write-pct")) {
      opt.write_pct = static_cast<unsigned>(std::atoi(next("--write-pct")));
    } else if (!std::strcmp(argv[i], "--kills")) {
      opt.kills = std::atoi(next("--kills"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--attempt-ms")) {
      opt.attempt_ms = static_cast<unsigned>(std::atoi(next("--attempt-ms")));
    } else if (!std::strcmp(argv[i], "--max-attempts")) {
      opt.max_attempts =
          static_cast<unsigned>(std::atoi(next("--max-attempts")));
    } else if (!std::strcmp(argv[i], "--max-inflight")) {
      opt.max_inflight =
          static_cast<std::uint32_t>(std::atoi(next("--max-inflight")));
    } else if (!std::strcmp(argv[i], "--op-timeout-ms")) {
      opt.op_timeout_ms =
          static_cast<unsigned>(std::atoi(next("--op-timeout-ms")));
    } else if (!std::strcmp(argv[i], "--watchdog")) {
      opt.watchdog_sec = static_cast<unsigned>(std::atoi(next("--watchdog")));
    } else if (!std::strcmp(argv[i], "--bench-json")) {
      opt.bench_json = next("--bench-json");
    } else if (!std::strcmp(argv[i], "--server-bin")) {
      opt.server_bin = next("--server-bin");
    } else if (!std::strcmp(argv[i], "--out")) {
      opt.artifact.path = next("--out");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return kExitUsage;
    }
  }
  if (opt.f < 1 || opt.clients < 1 || opt.ops < 1 || opt.write_pct > 100) {
    std::fprintf(stderr,
                 "need --f >= 1, --clients >= 1, --ops >= 1, "
                 "--write-pct in [0,100]\n");
    return kExitUsage;
  }
  if (!opt.plan_text.empty()) {
    std::string error;
    if (!NetFaultPlan::parse(opt.plan_text, &error)) {
      std::fprintf(stderr, "bad --plan: %s\n", error.c_str());
      return kExitUsage;
    }
  }
  bool made_tmp = false;
  if (opt.dir.empty()) {
    char tmpl[] = "/tmp/compreg-loadgen-XXXXXX";
    char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return kExitViolation;
    }
    opt.dir = made;
    made_tmp = true;
  }
  {
    std::ostringstream os;
    os << "compreg_loadgen --f " << opt.f << " --kind " << opt.kind_name()
       << " --clients " << opt.clients << " --ops " << opt.ops << " --kills "
       << opt.kills << " --seed " << opt.seed;
    opt.artifact.config_line = os.str();
  }

  LiveState live;
  std::atomic<std::uint64_t> progress{0};
  const Options& opt_ref = opt;
  Watchdog watchdog(
      opt.watchdog_sec, opt.artifact, progress, live,
      [&opt_ref](std::uint64_t seed, const std::string&, const std::string&,
                 const std::string&) {
        Options replay = opt_ref;
        replay.seed = seed;
        return replay_command(replay);
      },
      nullptr);

  const int rc = run_soak(opt, live, progress);
  if (made_tmp && rc == 0) {
    const std::string cmd = "rm -rf '" + opt.dir + "'";
    [[maybe_unused]] const int ignored = std::system(cmd.c_str());
  } else if (made_tmp) {
    std::printf("data dir kept for inspection: %s\n", opt.dir.c_str());
  }
  return rc;
}
