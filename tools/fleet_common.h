// Shared replica-fleet harness plumbing for the real-transport tools.
//
// verify_net_real, compreg_server and compreg_loadgen all need the same
// three pieces: a `--replica` child mode (the spawned binary re-executes
// itself as a replica event loop), a Fleet wrapper around the Supervisor
// that spawns 2f+1 replicas and parses the shared audit.log, and the
// fleet-epoch timestamp helpers that let child processes agree with the
// harness on one monotonic time origin. Extracted here so the register
// service tools (tools/compreg_server.cpp, tools/compreg_loadgen.cpp)
// reuse the exact harness the transport certifier was built on instead
// of drifting copies.
#pragma once

#include <cinttypes>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "net/backoff.h"
#include "net/net_plan.h"
#include "net/real/replica.h"
#include "net/real/supervisor.h"
#include "net/real/transport.h"
#include "verify_common.h"

namespace compreg::tools {

using SteadyPoint = std::chrono::steady_clock::time_point;

inline constexpr char kSelfExe[] = "/proc/self/exe";

inline std::uint64_t mix_seed(std::uint64_t base, int node) {
  return base ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(node + 1));
}

inline SteadyPoint epoch_from_ns(std::int64_t ns) {
  return SteadyPoint(std::chrono::duration_cast<SteadyPoint::duration>(
      std::chrono::nanoseconds(ns)));
}

inline std::int64_t epoch_to_ns(SteadyPoint epoch) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             epoch.time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Replica child mode: `<tool> --replica --node N ...`
//
// Every fleet tool supports the same child flags, so a supervisor can
// spawn any of them as a replica. argv[1] is "--replica"; parsing starts
// at argv[2].

inline int run_replica_child(int argc, char** argv) {
  net::real::ReplicaConfig cfg;
  std::string plan_text;
  std::int64_t epoch_ns = 0;
  for (int i = 2; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "replica: missing value for %s\n", argv[i]);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--node")) {
      cfg.transport.self = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--f")) {
      cfg.f = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--dir")) {
      cfg.data_dir = next();
    } else if (!std::strcmp(argv[i], "--kind")) {
      cfg.transport.kind = !std::strcmp(next(), "tcp")
                               ? net::real::TransportKind::kTcp
                               : net::real::TransportKind::kUds;
    } else if (!std::strcmp(argv[i], "--base-port")) {
      cfg.transport.base_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--epoch-ns")) {
      epoch_ns = std::strtoll(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed")) {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--plan")) {
      plan_text = next();
    } else {
      std::fprintf(stderr, "replica: unknown flag %s\n", argv[i]);
      return kExitUsage;
    }
  }
  cfg.transport.replicas = 2 * cfg.f + 1;
  cfg.transport.dir = cfg.data_dir;
  cfg.epoch = epoch_from_ns(epoch_ns);
  if (!plan_text.empty()) {
    std::string error;
    auto plan = net::NetFaultPlan::parse(plan_text, &error);
    if (!plan) {
      std::fprintf(stderr, "replica: bad --plan: %s\n", error.c_str());
      return kExitUsage;
    }
    cfg.plan = *std::move(plan);
  }
  return net::real::run_replica(cfg);
}

// ---------------------------------------------------------------------------
// Fleet: supervisor + audit-log bookkeeping

struct FleetConfig {
  int f = 1;
  net::real::TransportKind kind = net::real::TransportKind::kUds;
  int base_port = 47600;
  std::string dir;        // base data dir (must exist or be creatable)
  std::string plan_text;  // NetFaultPlan spec forwarded to every replica
  std::uint64_t seed = 1;
  std::string replica_bin = kSelfExe;  // binary spawned with --replica

  int replicas() const { return 2 * f + 1; }
  const char* kind_name() const {
    return kind == net::real::TransportKind::kTcp ? "tcp" : "uds";
  }
};

struct AuditStart {
  int node = -1;
  std::uint64_t durable_ts = 0;
  int existed = 0;
  std::int64_t t_ns = 0;
};

class Fleet {
 public:
  Fleet(const FleetConfig& cfg, SteadyPoint epoch)
      : cfg_(cfg), epoch_(epoch), sup_(epoch) {}

  const std::string& dir() const { return dir_; }
  const FleetConfig& config() const { return cfg_; }
  net::real::Supervisor& sup() { return sup_; }
  std::string audit_path() const { return dir_ + "/audit.log"; }

  // Creates (or wipes) the data directory and spawns every replica.
  bool start(const std::string& subdir = std::string()) {
    dir_ = cfg_.dir + (subdir.empty() ? "" : "/" + subdir);
    const std::string cmd = "rm -rf '" + dir_ + "' && mkdir -p '" + dir_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "cannot prepare data dir %s\n", dir_.c_str());
      return false;
    }
    for (int node = 0; node < cfg_.replicas(); ++node) spawn(node);
    return true;
  }

  void spawn(int node) {
    std::vector<std::string> argv = {
        cfg_.replica_bin,
        "--replica",
        "--node", std::to_string(node),
        "--f", std::to_string(cfg_.f),
        "--dir", dir_,
        "--kind", cfg_.kind_name(),
        "--base-port", std::to_string(cfg_.base_port),
        "--epoch-ns", std::to_string(epoch_to_ns(epoch_)),
        "--seed", std::to_string(mix_seed(cfg_.seed, 100 + node)),
    };
    if (!cfg_.plan_text.empty()) {
      argv.push_back("--plan");
      argv.push_back(cfg_.plan_text);
    }
    sup_.spawn(node, argv);
  }

  int serving_count(int node) const {
    int count = 0;
    std::ifstream in(audit_path());
    std::string line;
    while (std::getline(in, line)) {
      int got = -1;
      std::uint64_t ts = 0;
      std::int64_t t = 0;
      if (std::sscanf(line.c_str(),
                      "serving node=%d ts=%" SCNu64 " t_ns=%" SCNd64, &got,
                      &ts, &t) == 3 &&
          got == node) {
        ++count;
      }
    }
    return count;
  }

  std::vector<AuditStart> starts() const {
    std::vector<AuditStart> out;
    std::ifstream in(audit_path());
    std::string line;
    while (std::getline(in, line)) {
      AuditStart s;
      if (std::sscanf(line.c_str(),
                      "start node=%d durable_ts=%" SCNu64
                      " existed=%d t_ns=%" SCNd64,
                      &s.node, &s.durable_ts, &s.existed, &s.t_ns) == 4) {
        out.push_back(s);
      }
    }
    return out;
  }

  bool wait_serving(int node, int min_count, std::chrono::milliseconds limit) {
    const net::Deadline deadline = net::Deadline::after(limit);
    while (!deadline.expired()) {
      if (serving_count(node) >= min_count) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  bool wait_all_serving(std::chrono::milliseconds limit) {
    for (int node = 0; node < cfg_.replicas(); ++node) {
      if (!wait_serving(node, 1, limit)) {
        std::fprintf(stderr, "replica %d never reached serving\n", node);
        return false;
      }
    }
    return true;
  }

 private:
  FleetConfig cfg_;
  SteadyPoint epoch_;
  net::real::Supervisor sup_;
  std::string dir_;
};

}  // namespace compreg::tools
