#!/usr/bin/env python3
"""Validate BENCH_*.json files against the shared schema wrapper.

Every bench emitter (bench_net, bench_dpor, bench_waitfreedom, and the
harness's BENCH_transport.json) writes the same envelope:

    {"schema_version": 1, "bench": "<name>", "rows": [ {...}, ... ]}

This checker enforces the contract downstream diffing relies on:

  * top-level keys are exactly schema_version / bench / rows
  * schema_version == 1 (bump the constant here in lockstep with the
    emitters when a row key changes meaning)
  * bench is a non-empty string, unique across the files checked
  * rows is a non-empty array of flat objects (scalar values only --
    nested containers would break line-oriented diffing)
  * every row carries an "experiment" tag
  * rows that share the same key-set within a bench agree on value
    types key-by-key (an int column cannot silently become a string)
  * benches with a registered column contract (REQUIRED_COLUMNS) carry
    every required column in every row — the server soak and the
    throughput series feed dashboards that hard-code these names

Usage: check_bench_schema.py FILE [FILE...]
Exit codes: 0 all files conform, 1 violations found, 64 usage/IO error.
"""

import json
import sys

SCHEMA_VERSION = 1
_SCALARS = (str, int, float, bool, type(None))

# Per-bench column contracts. A bench listed here must carry every named
# column in every row; benches not listed are only held to the generic
# envelope rules above. Extend in lockstep with the emitter.
REQUIRED_COLUMNS = {
    "server": {
        "experiment", "kind", "clients", "ops", "throughput_ops_per_s",
        "p50_us", "p99_us", "p999_us", "unavailable_rate", "busy",
        "timeouts", "batch_occupancy_mean", "kills",
    },
    "server_telemetry": {"experiment", "kind", "name"},
    "throughput": {
        "experiment", "name", "threads", "iterations", "ns_per_op",
    },
}


def check_file(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        errors.append("%s: unreadable or invalid JSON: %s" % (path, exc))
        return None
    if not isinstance(doc, dict):
        errors.append("%s: top level is %s, expected object" %
                      (path, type(doc).__name__))
        return None
    extra = sorted(set(doc) - {"schema_version", "bench", "rows"})
    missing = sorted({"schema_version", "bench", "rows"} - set(doc))
    if extra:
        errors.append("%s: unexpected top-level keys %s" % (path, extra))
    if missing:
        errors.append("%s: missing top-level keys %s" % (path, missing))
        return None
    if doc["schema_version"] != SCHEMA_VERSION:
        errors.append("%s: schema_version is %r, expected %d" %
                      (path, doc["schema_version"], SCHEMA_VERSION))
    bench = doc["bench"]
    if not isinstance(bench, str) or not bench:
        errors.append("%s: bench is %r, expected non-empty string" %
                      (path, bench))
        bench = None
    rows = doc["rows"]
    if not isinstance(rows, list) or not rows:
        errors.append("%s: rows is %s, expected non-empty array" %
                      (path, "empty" if rows == [] else type(rows).__name__))
        return bench

    # type_map[key-set][key] -> type name seen first for that column.
    type_map = {}
    required = REQUIRED_COLUMNS.get(bench, set())
    for i, r in enumerate(rows):
        if not isinstance(r, dict):
            errors.append("%s: rows[%d] is %s, expected object" %
                          (path, i, type(r).__name__))
            continue
        if "experiment" not in r:
            errors.append("%s: rows[%d] has no \"experiment\" tag" %
                          (path, i))
        for col in sorted(required - set(r)):
            errors.append(
                "%s: rows[%d] is missing required column \"%s\" for "
                "bench %r" % (path, i, col, bench))
        shape = frozenset(r)
        cols = type_map.setdefault(shape, {})
        for k, v in r.items():
            if not isinstance(v, _SCALARS):
                errors.append(
                    "%s: rows[%d].%s is %s, expected a scalar" %
                    (path, i, k, type(v).__name__))
                continue
            # bool is an int subclass; keep it distinct, fold int/float.
            t = ("bool" if isinstance(v, bool) else
                 "number" if isinstance(v, (int, float)) else
                 type(v).__name__)
            if v is None:
                continue  # null never conflicts
            prev = cols.setdefault(k, t)
            if prev != t:
                errors.append(
                    "%s: rows[%d].%s is %s but earlier rows with the "
                    "same key-set used %s" % (path, i, k, t, prev))
    return bench


def main(argv):
    if len(argv) < 2:
        sys.stderr.write("usage: check_bench_schema.py FILE [FILE...]\n")
        return 64
    errors = []
    seen = {}
    for path in argv[1:]:
        bench = check_file(path, errors)
        if bench is not None:
            if bench in seen:
                errors.append(
                    "%s: bench name %r already used by %s" %
                    (path, bench, seen[bench]))
            else:
                seen[bench] = path
    if errors:
        for e in errors:
            sys.stderr.write("check_bench_schema: %s\n" % e)
        sys.stderr.write("check_bench_schema: %d violation(s) in %d "
                         "file(s)\n" % (len(errors), len(argv) - 1))
        return 1
    print("check_bench_schema: %d file(s) conform (schema_version %d): %s" %
          (len(argv) - 1, SCHEMA_VERSION,
           ", ".join(sorted(seen))))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
