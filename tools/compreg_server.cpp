// compreg_server: the standing multi-client register daemon.
//
// Fronts a 2f+1 ABD replica fleet (src/net/real/) with the service
// layer in src/server/: clients connect over UDS or TCP loopback, speak
// the length-prefixed client frames of net/real/wire.h, and get typed
// responses — kWriteOk/kReadOk, explicit kUnavailableResp when the
// fleet-side retry budget is spent, kBusyResp when admission control is
// full. Always-on telemetry (src/telemetry/) is exported at shutdown as
// a text stats file (--stats-out, parsed by compreg_loadgen) and a
// schema_version-1 JSON file (--json-out, validated by
// tools/check_bench_schema.py).
//
// Modes:
//   compreg_server [flags]              serve an already-running fleet
//   compreg_server --spawn-fleet [...]  spawn the fleet too (demo mode)
//   compreg_server --replica [...]      replica child (fleet member)
//
// SIGTERM/SIGINT triggers a graceful drain: stop admitting, finish
// every in-flight op, stop the workers, export telemetry, and verify
// the conservation invariant (received == ok + unavailable + busy).
// Exit 0 = clean shutdown with conservation intact; 1 = violated.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "server/server.h"
#include "telemetry/export.h"
#include "fleet_common.h"

namespace {

using compreg::server::Server;
using compreg::server::ServerConfig;
using compreg::tools::epoch_to_ns;
using compreg::tools::Fleet;
using compreg::tools::FleetConfig;
using compreg::tools::kExitUsage;
using compreg::tools::mix_seed;
using compreg::tools::run_replica_child;
using compreg::net::real::TransportKind;

std::atomic<bool> g_stop{false};

void on_signal(int) {
  // Async-signal-safe: a lock-free relaxed store on the latch.
  g_stop.store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--replica")) {
    return run_replica_child(argc, argv);
  }

  ServerConfig cfg;
  bool spawn_fleet = false;
  std::string stats_out;
  std::string json_out;
  std::string experiment = "E20";
  cfg.epoch_ns = epoch_to_ns(std::chrono::steady_clock::now());

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--kind")) {
      cfg.kind = !std::strcmp(next("--kind"), "tcp") ? TransportKind::kTcp
                                                     : TransportKind::kUds;
    } else if (!std::strcmp(argv[i], "--f")) {
      cfg.f = std::atoi(next("--f"));
    } else if (!std::strcmp(argv[i], "--dir")) {
      cfg.fleet_dir = next("--dir");
    } else if (!std::strcmp(argv[i], "--front-dir")) {
      cfg.front_dir = next("--front-dir");
    } else if (!std::strcmp(argv[i], "--base-port")) {
      cfg.fleet_base_port = std::atoi(next("--base-port"));
    } else if (!std::strcmp(argv[i], "--front-port")) {
      cfg.front_base_port = std::atoi(next("--front-port"));
    } else if (!std::strcmp(argv[i], "--max-inflight")) {
      cfg.max_inflight =
          static_cast<std::uint32_t>(std::atoi(next("--max-inflight")));
    } else if (!std::strcmp(argv[i], "--attempt-ms")) {
      cfg.attempt_ms = static_cast<unsigned>(std::atoi(next("--attempt-ms")));
    } else if (!std::strcmp(argv[i], "--max-attempts")) {
      cfg.max_attempts =
          static_cast<unsigned>(std::atoi(next("--max-attempts")));
    } else if (!std::strcmp(argv[i], "--seed")) {
      cfg.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--plan")) {
      cfg.plan_text = next("--plan");
    } else if (!std::strcmp(argv[i], "--epoch-ns")) {
      cfg.epoch_ns = std::strtoll(next("--epoch-ns"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--stats-out")) {
      stats_out = next("--stats-out");
    } else if (!std::strcmp(argv[i], "--json-out")) {
      json_out = next("--json-out");
    } else if (!std::strcmp(argv[i], "--experiment")) {
      experiment = next("--experiment");
    } else if (!std::strcmp(argv[i], "--spawn-fleet")) {
      spawn_fleet = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return kExitUsage;
    }
  }
  if (cfg.fleet_dir.empty() && cfg.kind == TransportKind::kUds) {
    std::fprintf(stderr, "need --dir (fleet socket/data directory)\n");
    return kExitUsage;
  }
  if (cfg.front_dir.empty()) cfg.front_dir = cfg.fleet_dir + "/front";

  {
    const std::string cmd = "mkdir -p '" + cfg.front_dir + "'";
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "cannot create front dir %s\n",
                   cfg.front_dir.c_str());
      return kExitUsage;
    }
  }

  // Demo/convenience mode: own the fleet ourselves. (The loadgen owns
  // the fleet in chaos runs so it can kill-9 members.)
  const auto epoch = compreg::tools::epoch_from_ns(cfg.epoch_ns);
  std::unique_ptr<Fleet> fleet;
  if (spawn_fleet) {
    FleetConfig fc;
    fc.f = cfg.f;
    fc.kind = cfg.kind;
    fc.base_port = cfg.fleet_base_port;
    fc.dir = cfg.fleet_dir;
    fc.plan_text = cfg.plan_text;
    fc.seed = cfg.seed;
    fleet = std::make_unique<Fleet>(fc, epoch);
    // Fleet::start wipes the directory; recreate the front dir after.
    if (!fleet->start()) return 1;
    const std::string cmd = "mkdir -p '" + cfg.front_dir + "'";
    if (std::system(cmd.c_str()) != 0) return 1;
    if (!fleet->wait_all_serving(std::chrono::milliseconds(15000))) {
      std::fprintf(stderr, "fleet startup failure\n");
      return 1;
    }
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::printf("compreg_server: serving (kind=%s f=%d max_inflight=%u)\n",
              cfg.kind == TransportKind::kTcp ? "tcp" : "uds", cfg.f,
              cfg.max_inflight);
  std::fflush(stdout);

  Server server(cfg);
  server.run(g_stop);

  const auto snap = server.registry().snapshot();
  const auto cons = server.conservation();
  std::printf("telemetry conservation: %s (received=%llu writes_ok=%llu "
              "reads_ok=%llu unavailable=%llu busy=%llu)\n",
              cons.ok ? "OK" : "VIOLATION",
              static_cast<unsigned long long>(cons.received),
              static_cast<unsigned long long>(cons.writes_ok),
              static_cast<unsigned long long>(cons.reads_ok),
              static_cast<unsigned long long>(cons.unavailable),
              static_cast<unsigned long long>(cons.busy));

  if (!stats_out.empty()) {
    std::ofstream out(stats_out);
    out << compreg::telemetry::to_text(snap);
    out << "conservation " << (cons.ok ? "OK" : "VIOLATION") << "\n";
  }
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << compreg::telemetry::to_json(snap, "server_telemetry", experiment);
  }
  if (fleet) fleet->sup().terminate_all(std::chrono::milliseconds(2000));
  return cons.ok ? 0 : 1;
}
