// verify_dpor: exhaustive schedule-space certification driver.
//
// Explores EVERY simulator schedule of a chosen snapshot implementation
// with dynamic partial-order reduction (sched/dpor.h): one
// representative execution per Mazurkiewicz trace plus dynamically
// discovered race reversals, pruned further by sleep sets. Every
// explored execution's history runs through the Shrinking Lemma checker
// (and optionally the linearization-witness builder and the
// protocol-conformance analyzer); the first failing execution stops the
// run with a replayable artifact.
//
// Unlike verify_fuzz this is not sampling: when the run prints
//
//   certified: all N schedules pass
//
// every reachable schedule of that configuration (under the given fault
// plan, if any) has been verified. If exploration was truncated — by
// --max-schedules or by --depth-bound — the run instead prints an
// explicit "BOUNDED, NOT CERTIFIED" banner: clean means nothing was
// found within the bound, not that nothing exists.
//
// --symmetry readers additionally quotients the schedule space by
// permutations of the reader processes (procs C..C+R-1 of the standard
// workload, which run identical programs on interchangeable state): the
// engine explores one canonical representative per reader-permutation
// orbit, cutting the space by up to R!. Rejected when a fault plan
// targets a reader (the group members would stop being
// interchangeable) and for --impl net with R >= 2 (reader endpoints
// seed their retry-jitter RNG by network node id, so reader programs
// are not step-isomorphic there). --cross-validate re-runs the same
// exploration unreduced and fails loudly if the two engines disagree
// on the verdict — the tool-level soundness check; the test suite
// additionally proves identical violation *sets* on seeded mutants
// (tests/analysis/symmetry_cross_test.cpp).
//
// --covering (implied by --symmetry readers) turns on class-orbit
// covering: each execution's Mazurkiewicz class gets a canonical
// signature, and an execution whose class was already analyzed spawns
// no further race reversals. With the trivial group this does not
// change the certified claim — one representative per class is still
// analyzed — it only suppresses the re-explorations classic DPOR's
// sleep sets miss, which on register workloads is the difference
// between thousands and millions of executions. Sound for --impl net
// (it is symmetry-free), and the mechanism that makes small net
// configurations certifiable at all.
//
// --jobs N runs executions on N worker threads. Exploration is
// deterministic by construction — wave composition and integration
// order never depend on worker timing — so every statistic, banner and
// witness is byte-identical across --jobs values; --certificate FILE
// writes a timing-free certificate whose bytes the suite diffs across
// --jobs 1/8 to enforce exactly that.
//
// Chaos mode (--chaos / --crash-prob / --stall / --plan) applies ONE
// fault plan — fixed by --plan or derived once from --seed — to every
// explored schedule, certifying "all schedules under this plan". Hang
// plans are rejected (every schedule would wedge). --impl net builds
// the register over the simulated network; all send/poll points are
// mutually dependent (global-order cells), so the fabric's RNG is
// consumed in a schedule-prefix-determined order and exploration stays
// sound. Expect little reduction there. The chaos-derived net plan
// includes crash–recovery cycles at --net-recover permille, and the
// durability auditor's findings (ack-before-persist, amnesiac-reply)
// are merged into every explored execution's conformance report;
// --amnesia ack|rejoin seeds the corresponding mutant so a bounded
// DPOR run certifiably flags it.
//
// --schedule "0,1,1,0,..." replays ONE exact schedule (the format
// emitted in artifacts' "# schedule" line) instead of exploring —
// violations reproduce with a single copy-paste of the artifact's
// "# replay:" line, with no symmetry or jobs flags needed.
//
// The watchdog mirrors verify_fuzz: a wedged exploration exits 2 with
// an artifact naming the in-flight schedule prefix and the conformance
// report up to the hang.
//
// Usage:
//   verify_dpor [--impl anderson|afek|unbounded|doublecollect|fullstack
//                      |seqlock|mutex|net]
//               [--components N] [--readers N] [--ops N] [--seed N]
//               [--max-schedules N] [--depth-bound N] [--no-sleep-sets]
//               [--dep-conservative] [--symmetry off|readers]
//               [--covering] [--cross-validate] [--jobs N]
//               [--certificate FILE]
//               [--conformance] [--witness]
//               [--chaos] [--crash-prob PERMILLE] [--stall PERMILLE]
//               [--plan SPEC] [--net-f F] [--net-recover PERMILLE]
//               [--net-plan SPEC] [--amnesia none|ack|rejoin]
//               [--schedule CSV] [--out FILE] [--watchdog SECONDS]
//
// Exit codes: 0 = explored space clean (certified or bounded-clean);
// 1 = violation found (artifact written to --out) or cross-validation
// mismatch; 2 = watchdog timeout; 64 = usage error.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/race.h"
#include "fault/fault_plan.h"
#include "fault/fault_policy.h"
#include "lin/dump.h"
#include "lin/shrinking_checker.h"
#include "lin/witness.h"
#include "lin/workload.h"
#include "net/net_cell.h"
#include "sched/dpor.h"
#include "sched/policy.h"
#include "util/rng.h"
#include "verify_common.h"

namespace {

using compreg::core::Snapshot;
using compreg::tools::Artifact;
using compreg::tools::kExitUsage;
using compreg::tools::kExitViolation;
using compreg::tools::LiveState;
using compreg::tools::make_impl;
using compreg::tools::ReplayFn;
using compreg::tools::Watchdog;
using compreg::tools::write_artifact;

std::string schedule_csv(const std::vector<int>& schedule) {
  std::ostringstream out;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i != 0) out << ',';
    out << schedule[i];
  }
  return out.str();
}

std::optional<std::vector<int>> parse_schedule(const std::string& text) {
  std::vector<int> out;
  std::istringstream in(text);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (tok.empty()) return std::nullopt;
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) return std::nullopt;
    out.push_back(static_cast<int>(v));
  }
  if (out.empty()) return std::nullopt;
  return out;
}

// Built fresh per execution; members destroy in reverse order, so the
// recorder and snapshot go before the fabric whose SimNet the net cells
// reference.
struct RunCtx {
  std::optional<compreg::net::ScopedNetFabric> fab;
  std::unique_ptr<Snapshot<std::uint64_t>> snap;
  std::shared_ptr<compreg::lin::HistoryRecorder> rec;
};

// What the first failing execution saw, for the report and artifact.
// With --jobs > 1 several workers can fail inside one wave; the mutex
// in main() guards this, and the artifact is regenerated afterwards by
// replaying the engine's (deterministic) witness schedule anyway.
struct Outcome {
  const char* kind = "violation";
  std::string detail;
  compreg::lin::History history;
  std::string conf_dump;
};

const char* verdict_name(const compreg::sched::DporResult& r) {
  if (!r.ok) return "violation";
  return r.certified() ? "certified" : "bounded-clean";
}

}  // namespace

int main(int argc, char** argv) {
  std::string impl = "anderson";
  int components = 2;
  int readers = 2;
  int ops = 1;
  std::uint64_t seed = 1;
  std::uint64_t max_schedules = 1'000'000;
  int depth_bound = -1;
  bool sleep_sets = true;
  bool dep_conservative = false;
  std::string symmetry_text = "off";
  bool covering = false;
  bool cross_validate = false;
  int jobs = 1;
  std::string certificate_path;
  bool conformance = false;
  bool witness = false;
  bool chaos = false;
  long crash_permille = -1;  // -1 = not set
  long stall_permille = -1;
  std::string plan_text;
  int net_f = 1;
  long net_recover_permille = -1;  // -1 = not set
  std::string net_plan_text;
  std::string amnesia_text = "none";
  std::string schedule_text;
  unsigned watchdog_sec = 120;
  Artifact artifact;
  artifact.tool = "verify_dpor";
  artifact.path = "verify_dpor_failure.txt";

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--impl")) {
      impl = next("--impl");
    } else if (!std::strcmp(argv[i], "--components")) {
      components = std::atoi(next("--components"));
    } else if (!std::strcmp(argv[i], "--readers")) {
      readers = std::atoi(next("--readers"));
    } else if (!std::strcmp(argv[i], "--ops")) {
      ops = std::atoi(next("--ops"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--max-schedules")) {
      max_schedules = std::strtoull(next("--max-schedules"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--depth-bound")) {
      depth_bound = std::atoi(next("--depth-bound"));
    } else if (!std::strcmp(argv[i], "--no-sleep-sets")) {
      sleep_sets = false;
    } else if (!std::strcmp(argv[i], "--dep-conservative")) {
      dep_conservative = true;
    } else if (!std::strcmp(argv[i], "--symmetry")) {
      symmetry_text = next("--symmetry");
    } else if (!std::strcmp(argv[i], "--covering")) {
      covering = true;
    } else if (!std::strcmp(argv[i], "--cross-validate")) {
      cross_validate = true;
    } else if (!std::strcmp(argv[i], "--jobs")) {
      jobs = std::atoi(next("--jobs"));
    } else if (!std::strcmp(argv[i], "--certificate")) {
      certificate_path = next("--certificate");
    } else if (!std::strcmp(argv[i], "--conformance")) {
      conformance = true;
    } else if (!std::strcmp(argv[i], "--witness")) {
      witness = true;
    } else if (!std::strcmp(argv[i], "--chaos")) {
      chaos = true;
    } else if (!std::strcmp(argv[i], "--crash-prob")) {
      crash_permille = std::atol(next("--crash-prob"));
    } else if (!std::strcmp(argv[i], "--stall")) {
      stall_permille = std::atol(next("--stall"));
    } else if (!std::strcmp(argv[i], "--plan")) {
      plan_text = next("--plan");
    } else if (!std::strcmp(argv[i], "--net-f")) {
      net_f = std::atoi(next("--net-f"));
    } else if (!std::strcmp(argv[i], "--net-recover")) {
      net_recover_permille = std::atol(next("--net-recover"));
    } else if (!std::strcmp(argv[i], "--net-plan")) {
      net_plan_text = next("--net-plan");
    } else if (!std::strcmp(argv[i], "--amnesia")) {
      amnesia_text = next("--amnesia");
    } else if (!std::strcmp(argv[i], "--schedule")) {
      schedule_text = next("--schedule");
    } else if (!std::strcmp(argv[i], "--out")) {
      artifact.path = next("--out");
    } else if (!std::strcmp(argv[i], "--watchdog")) {
      watchdog_sec = static_cast<unsigned>(std::atoi(next("--watchdog")));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return kExitUsage;
    }
  }
  if (impl == "mw") {
    std::fprintf(stderr,
                 "--impl mw is native-threads-only; DPOR explores the "
                 "deterministic simulator\n");
    return kExitUsage;
  }
  if (impl != "net" &&
      (net_f != 1 || net_recover_permille >= 0 || !net_plan_text.empty() ||
       amnesia_text != "none")) {
    std::fprintf(stderr,
                 "network flags (--net-f/--net-recover/--net-plan/"
                 "--amnesia) require --impl net\n");
    return kExitUsage;
  }
  if (impl == "net" && net_f < 1) {
    std::fprintf(stderr, "--net-f must be >= 1 (2f+1 replicas)\n");
    return kExitUsage;
  }
  if (net_recover_permille > 1000) {
    std::fprintf(stderr, "permille values cap at 1000\n");
    return kExitUsage;
  }
  if (jobs < 1) {
    std::fprintf(stderr, "--jobs must be >= 1\n");
    return kExitUsage;
  }
  if (symmetry_text != "off" && symmetry_text != "readers") {
    std::fprintf(stderr, "--symmetry takes off|readers\n");
    return kExitUsage;
  }
  compreg::sched::SymmetrySpec symmetry;  // inactive by default
  if (symmetry_text == "readers") {
    symmetry.first = components;
    symmetry.count = readers;
    // R == 1 leaves the group trivial; class covering (identity orbit
    // dedup) is still sound and still prunes, so keep it on.
    covering = true;
  }
  if (symmetry.active() && impl == "net") {
    // Reader endpoints seed their retry-backoff jitter RNG by network
    // node id, so reader programs are NOT step-isomorphic over the
    // simulated network: permuting readers changes the executions.
    std::fprintf(stderr,
                 "--symmetry readers is unsound for --impl net with "
                 "--readers >= 2 (per-node jitter seeding breaks reader "
                 "interchangeability); certify net configs with "
                 "--readers 1 and --jobs instead\n");
    return kExitUsage;
  }
  if (cross_validate && !symmetry.active()) {
    std::fprintf(stderr,
                 "--cross-validate compares the symmetry-reduced engine "
                 "against the unreduced one; it needs --symmetry readers "
                 "and --readers >= 2\n");
    return kExitUsage;
  }
  compreg::net::Amnesia amnesia = compreg::net::Amnesia::kNone;
  if (amnesia_text == "ack") {
    amnesia = compreg::net::Amnesia::kAckBeforePersist;
  } else if (amnesia_text == "rejoin") {
    amnesia = compreg::net::Amnesia::kBlankRejoin;
  } else if (amnesia_text != "none") {
    std::fprintf(stderr, "--amnesia takes none|ack|rejoin\n");
    return kExitUsage;
  }
  if (chaos && impl != "net") {
    if (crash_permille < 0) crash_permille = 350;
    if (stall_permille < 0) stall_permille = 250;
  }
  if (crash_permille < 0) crash_permille = 0;
  if (stall_permille < 0) stall_permille = 0;

  // ONE plan for the whole exploration: fixed by --plan, or derived
  // once from the seed with the same derivation verify_fuzz uses for
  // its per-iteration plans (so seeds transfer between the tools).
  compreg::fault::FaultPlan plan;
  if (!plan_text.empty()) {
    const auto parsed = compreg::fault::FaultPlan::parse(plan_text);
    if (!parsed) {
      std::fprintf(stderr, "unparsable --plan '%s'\n", plan_text.c_str());
      return kExitUsage;
    }
    plan = *parsed;
  } else if (crash_permille > 0 || stall_permille > 0) {
    compreg::Rng plan_rng(seed ^ 0xfa0175ab5eedull);
    const std::uint64_t est_points = static_cast<std::uint64_t>(ops) * 16 + 8;
    plan = compreg::fault::FaultPlan::random(
        plan_rng, components + readers, est_points,
        static_cast<unsigned>(crash_permille),
        static_cast<unsigned>(stall_permille));
  }
  if (!plan.hangs.empty()) {
    std::fprintf(stderr,
                 "hang plans cannot be explored (every schedule wedges); "
                 "use verify_fuzz --plan to exercise the watchdog\n");
    return kExitUsage;
  }
  if (symmetry.active()) {
    // A plan that crashes or stalls a specific reader destroys the
    // readers' interchangeability; the engine would refuse too, but a
    // usage error is friendlier than a CHECK abort.
    bool targets_reader = false;
    for (const auto& c : plan.crashes) targets_reader |= symmetry.member(c.proc);
    for (const auto& s : plan.stalls) targets_reader |= symmetry.member(s.proc);
    if (targets_reader) {
      std::fprintf(stderr,
                   "--symmetry readers is unsound under a fault plan that "
                   "targets a reader process (procs %d..%d); restrict the "
                   "plan to writers or drop --symmetry\n",
                   components, components + readers - 1);
      return kExitUsage;
    }
  }
  compreg::net::NetFaultPlan net_plan;
  if (!net_plan_text.empty()) {
    const auto parsed = compreg::net::NetFaultPlan::parse(net_plan_text);
    if (!parsed) {
      std::fprintf(stderr, "unparsable --net-plan '%s'\n",
                   net_plan_text.c_str());
      return kExitUsage;
    }
    net_plan = *parsed;
  } else if (chaos && impl == "net") {
    if (net_recover_permille < 0) net_recover_permille = 150;
    compreg::Rng net_rng(seed ^ 0x6e65745f5eedull);
    const std::uint64_t est_net_steps = static_cast<std::uint64_t>(ops) * 400;
    net_plan = compreg::net::NetFaultPlan::random(
        net_rng, 2 * net_f + 1, est_net_steps,
        /*loss=*/100,
        /*partition=*/150,
        /*crash=*/150, static_cast<unsigned>(net_recover_permille));
  }

  // The config line names everything that determines the explored
  // schedule set — --jobs deliberately excluded (it only buys
  // wall-clock; certificates must not depend on it).
  {
    std::ostringstream cfg;
    cfg << "impl=" << impl << " C=" << components << " R=" << readers
        << " ops=" << ops << " seed=" << seed
        << " max-schedules=" << max_schedules;
    if (depth_bound >= 0) cfg << " depth-bound=" << depth_bound;
    if (!sleep_sets) cfg << " -sleep-sets";
    if (dep_conservative) cfg << " +dep-conservative";
    if (symmetry.active()) cfg << " symmetry=readers";
    if (covering) cfg << " +covering";
    if (impl == "net") cfg << " f=" << net_f
                           << " replicas=" << (2 * net_f + 1);
    if (amnesia != compreg::net::Amnesia::kNone) {
      cfg << " amnesia=" << amnesia_text;
    }
    if (!plan.empty()) cfg << " plan=" << plan.to_string();
    if (!net_plan.empty()) cfg << " net-plan=" << net_plan.to_string();
    if (conformance) cfg << " +conformance";
    if (witness) cfg << " +witness";
    artifact.config_line = cfg.str();
  }
  std::printf("verify_dpor: %s\n", artifact.config_line.c_str());
  if (jobs > 1) std::printf("  workers: %d\n", jobs);

  // Simulator serializes every step, so the ownership checker carries
  // the conformance burden; the vector-clock race detector is for
  // free-running threads. One analyzer session per worker — each
  // observes exactly its worker's executions (tee'd off that worker's
  // DPOR trace recorder), so parallel workers never interleave their
  // access streams; --conformance gates whether findings fail the run.
  std::vector<std::unique_ptr<compreg::analysis::AnalysisSession>> sessions;
  for (int w = 0; w < jobs; ++w) {
    sessions.push_back(std::make_unique<compreg::analysis::AnalysisSession>(
        /*detect_races=*/false));
  }

  const ReplayFn make_replay = [&](std::uint64_t s, const std::string& p,
                                   const std::string& np,
                                   const std::string& sch) {
    std::ostringstream cmd;
    cmd << "verify_dpor --impl " << impl << " --components " << components
        << " --readers " << readers << " --ops " << ops << " --seed " << s;
    if (conformance) cmd << " --conformance";
    if (witness) cmd << " --witness";
    if (impl == "net") cmd << " --net-f " << net_f;
    if (amnesia != compreg::net::Amnesia::kNone) {
      cmd << " --amnesia " << amnesia_text;
    }
    if (!p.empty()) cmd << " --plan '" << p << "'";
    if (!np.empty()) cmd << " --net-plan '" << np << "'";
    if (!sch.empty()) cmd << " --schedule " << sch;
    return cmd.str();
  };

  std::atomic<std::uint64_t> progress{0};
  LiveState live;
  const std::string plan_str = plan.empty() ? std::string() : plan.to_string();
  const std::string net_plan_str =
      net_plan.empty() ? std::string() : net_plan.to_string();
  live.set(seed, plan_str, net_plan_str);
  Watchdog watchdog(watchdog_sec, artifact, progress, live, make_replay,
                    [&sessions] { return sessions[0]->report().dump(); });

  std::mutex outcome_mu;
  bool outcome_set = false;
  Outcome outcome;
  compreg::lin::ConformanceCounters conf_total;

  // One fresh scenario instance per explored execution. The returned
  // verifier checks that execution's history; everything it shares
  // across workers (counters, first-failure outcome) sits behind
  // outcome_mu. Per-worker analyzer state is keyed by dpor_worker_id().
  const compreg::sched::DporScenario scenario =
      [&](compreg::sched::SimScheduler& sim) {
        compreg::analysis::AnalysisSession& session =
            *sessions[static_cast<std::size_t>(compreg::sched::dpor_worker_id())];
        session.reset();
        auto ctx = std::make_shared<RunCtx>();
        if (impl == "net") {
          compreg::net::NetConfig ncfg;
          ncfg.f = net_f;
          ncfg.amnesia = amnesia;
          ctx->fab.emplace(ncfg, net_plan, seed ^ 0x51b2e75eedull);
        }
        ctx->snap = make_impl(impl, components, readers);
        if (!ctx->snap) {
          std::fprintf(stderr, "unknown impl '%s'\n", impl.c_str());
          std::exit(kExitUsage);
        }
        compreg::lin::WorkloadConfig cfg;
        cfg.writes_per_writer = ops;
        cfg.scans_per_reader = ops;
        ctx->rec = compreg::lin::spawn_sim_workload(sim, *ctx->snap, cfg);
        return [&, ctx]() -> bool {
          compreg::analysis::AnalysisSession& worker_session =
              *sessions[static_cast<std::size_t>(
                  compreg::sched::dpor_worker_id())];
          const compreg::lin::History h = ctx->rec->merge();
          compreg::analysis::AnalysisReport creport = worker_session.report();
          // The durability auditor's findings ride the conformance
          // report; the fabric is alive here (ctx owns it).
          if (ctx->fab) {
            creport.merge_findings(
                ctx->fab->fabric().net().durable().report());
          }
          const char* kind = nullptr;
          std::string detail;
          if (conformance && !creport.ok()) {
            kind = "conformance findings";
            detail = creport.findings.front().to_string();
          }
          if (kind == nullptr) {
            const compreg::lin::CheckResult result =
                compreg::lin::check_shrinking_lemma(h);
            if (!result.ok) {
              kind = "violation";
              detail = result.violation;
            }
          }
          if (kind == nullptr && witness) {
            const compreg::lin::Witness w =
                compreg::lin::build_linearization(h);
            if (!w.ok) {
              kind = "witness failure";
              detail = w.error;
            }
          }
          {
            std::lock_guard<std::mutex> lock(outcome_mu);
            const compreg::lin::ConformanceCounters& cc = creport.counters;
            conf_total.cells += cc.cells;
            conf_total.swmr_cells += cc.swmr_cells;
            conf_total.swsr_cells += cc.swsr_cells;
            conf_total.mrmw_cells += cc.mrmw_cells;
            conf_total.reads += cc.reads;
            conf_total.writes += cc.writes;
            conf_total.findings += creport.findings.size();
            if (kind != nullptr && !outcome_set) {
              outcome_set = true;
              outcome.kind = kind;
              outcome.detail = detail;
              outcome.history = h;
              outcome.conf_dump = creport.dump();
            }
          }
          return kind == nullptr;
        };
      };

  // Replay one exact schedule on the main thread (worker id 0) — used
  // by --schedule mode and to regenerate the artifact for the engine's
  // canonical witness after a parallel exploration.
  const auto run_schedule = [&](const std::vector<int>& script) -> bool {
    compreg::sched::ScriptPolicy base(script);
    std::optional<compreg::fault::FaultInjectingPolicy> faulty;
    compreg::sched::SchedulePolicy* policy = &base;
    if (!plan.empty()) {
      faulty.emplace(base, plan);
      policy = &*faulty;
    }
    compreg::sched::SimScheduler sim(*policy);
    auto verifier = scenario(sim);
    if (faulty) faulty->attach(sim);
    {
      compreg::sched::ScopedAccessObserver observe(sessions[0].get());
      sim.run();
    }
    progress.fetch_add(1);
    return verifier();
  };

  const auto t0 = std::chrono::steady_clock::now();

  if (!schedule_text.empty()) {
    // Replay mode: run the one scripted schedule, no exploration.
    const auto script = parse_schedule(schedule_text);
    if (!script) {
      std::fprintf(stderr, "unparsable --schedule '%s'\n",
                   schedule_text.c_str());
      return kExitUsage;
    }
    live.set(seed, plan_str, net_plan_str, schedule_text);
    if (!run_schedule(*script)) {
      std::printf("REPLAY FAILED (%s): %s\n", outcome.kind,
                  outcome.detail.c_str());
      compreg::lin::dump_history(outcome.history, std::cout);
      write_artifact(artifact, outcome.kind, seed, plan_str, net_plan_str,
                     schedule_text,
                     make_replay(seed, plan_str, net_plan_str, schedule_text),
                     outcome.detail, &outcome.history, outcome.conf_dump);
      return kExitViolation;
    }
    std::printf("replayed schedule passes (%zu scripted steps)\n",
                script->size());
    return 0;
  }

  const auto explore = [&](const compreg::sched::SymmetrySpec& sym,
                           bool cover) -> compreg::sched::DporResult {
    compreg::sched::DporOptions opts;
    opts.max_schedules = max_schedules;
    opts.depth_bound = depth_bound;
    opts.sleep_sets = sleep_sets;
    opts.dependency.conservative_reads = dep_conservative;
    opts.plan = plan;
    opts.symmetry = sym;
    opts.class_covering = cover;
    opts.jobs = jobs;
    opts.tee_for_worker = [&](int w) -> compreg::sched::AccessObserver* {
      return sessions[static_cast<std::size_t>(w)].get();
    };
    opts.on_execution = [&](const std::vector<int>& prefix,
                            std::uint64_t done) {
      live.set(seed, plan_str, net_plan_str, schedule_csv(prefix));
      progress.store(done + 1);
      if (done > 0 && done % 20000 == 0) {
        std::printf("  %llu schedules explored...\n",
                    static_cast<unsigned long long>(done));
        std::fflush(stdout);
      }
    };
    return compreg::sched::explore_dpor(scenario, opts);
  };

  const compreg::sched::DporResult result = explore(symmetry, covering);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto& st = result.stats;

  // Reduction report: the naive bound is astronomically large in
  // general, so report both it and the reduction factor in log10.
  const double explored_log10 =
      st.schedules > 0 ? std::log10(static_cast<double>(st.schedules)) : 0.0;
  std::printf("  schedules explored: %llu\n",
              static_cast<unsigned long long>(st.schedules));
  std::printf("  naive enumeration bound: ~10^%.1f (reduction ~10^%.1f)\n",
              st.naive_log10, st.naive_log10 - explored_log10);
  std::printf(
      "  backtrack points: %llu, sleep-set prunes: %llu, max points: %llu\n",
      static_cast<unsigned long long>(st.backtrack_points),
      static_cast<unsigned long long>(st.sleep_set_hits),
      static_cast<unsigned long long>(st.max_points));
  if (symmetry.active()) {
    std::printf("  symmetry remaps: %llu\n",
                static_cast<unsigned long long>(st.symmetry_remaps));
  }
  if (symmetry.active() || covering) {
    std::printf("  orbit hits (covered classes skipped): %llu\n",
                static_cast<unsigned long long>(st.orbit_hits));
  }
  std::printf("  wall time: %.2f s (%llu waves, %d worker%s)\n", wall,
              static_cast<unsigned long long>(st.waves), jobs,
              jobs == 1 ? "" : "s");
  if (conformance) {
    std::printf("conformance totals: %s\n", conf_total.summary().c_str());
  }

  if (!certificate_path.empty()) {
    // Timing-free and jobs-free by construction: byte-identical across
    // --jobs values for the same configuration (the suite diffs this).
    std::ofstream cert(certificate_path);
    cert << "# verify_dpor certificate\n"
         << "# " << artifact.config_line << "\n"
         << "verdict: " << verdict_name(result) << "\n"
         << "schedules: " << st.schedules << "\n"
         << "backtrack_points: " << st.backtrack_points << "\n"
         << "sleep_set_hits: " << st.sleep_set_hits << "\n"
         << "symmetry_remaps: " << st.symmetry_remaps << "\n"
         << "orbit_hits: " << st.orbit_hits << "\n"
         << "waves: " << st.waves << "\n"
         << "max_points: " << st.max_points << "\n";
    if (!result.ok) {
      cert << "violation_schedule: " << schedule_csv(result.violation_schedule)
           << "\n";
    }
  }

  if (!result.ok) {
    // Regenerate the outcome from the engine's canonical witness: with
    // --jobs > 1 the first failure *observed* (recorded above) may be a
    // different schedule than the deterministic witness the engine
    // reports, and the artifact must match its "# schedule" line.
    {
      std::lock_guard<std::mutex> lock(outcome_mu);
      outcome_set = false;
    }
    const bool replay_ok = run_schedule(result.violation_schedule);
    if (replay_ok) {
      std::fprintf(stderr,
                   "internal error: witness schedule passed on replay\n");
    }
    const std::string sched = schedule_csv(result.violation_schedule);
    std::printf("SCHEDULE-SPACE %s: %s\n",
                std::strcmp(outcome.kind, "violation") == 0
                    ? "VIOLATION"
                    : outcome.kind,
                outcome.detail.c_str());
    std::printf("failing schedule: %s\n", sched.c_str());
    if (!plan_str.empty()) {
      std::printf("fault plan: %s\n", plan_str.c_str());
    }
    std::printf("# replayable history follows\n");
    compreg::lin::dump_history(outcome.history, std::cout);
    write_artifact(artifact, outcome.kind, seed, plan_str, net_plan_str,
                   sched, make_replay(seed, plan_str, net_plan_str, sched),
                   outcome.detail, &outcome.history, outcome.conf_dump);
    return kExitViolation;
  }

  if (cross_validate) {
    // Soundness check: the unreduced engine over the same configuration
    // must reach the same verdict. (Identical violation *sets* on
    // seeded mutants are proved by tests/analysis/symmetry_cross_test;
    // here the reduced run was clean, so the unreduced one must be
    // too.) The unreduced space is up to R! larger — budget-capped runs
    // may legitimately hit max-schedules, which still cross-validates
    // as long as nothing in the larger explored set fails.
    std::printf("cross-validating against the unreduced engine...\n");
    {
      std::lock_guard<std::mutex> lock(outcome_mu);
      outcome_set = false;
    }
    const compreg::sched::DporResult unreduced =
        explore(compreg::sched::SymmetrySpec{}, false);
    std::printf("  unreduced schedules: %llu (reduced: %llu, factor %.2fx)\n",
                static_cast<unsigned long long>(unreduced.stats.schedules),
                static_cast<unsigned long long>(st.schedules),
                st.schedules > 0
                    ? static_cast<double>(unreduced.stats.schedules) /
                          static_cast<double>(st.schedules)
                    : 0.0);
    if (!unreduced.ok) {
      std::printf(
          "SYMMETRY CROSS-VALIDATION FAILED: reduced engine certified "
          "clean but the unreduced engine found: %s\nfailing schedule: "
          "%s\n(canonical form: %s)\n",
          outcome.detail.c_str(),
          schedule_csv(unreduced.violation_schedule).c_str(),
          schedule_csv(compreg::sched::canonical_schedule(
                           unreduced.violation_schedule, symmetry))
              .c_str());
      return kExitViolation;
    }
    if (unreduced.certified() != result.certified()) {
      // Reduced certified but unreduced truncated (or vice versa) is
      // a budget artifact, not a soundness failure — say so.
      std::printf(
          "  note: verdicts are %s (reduced) vs %s (unreduced); the "
          "engines agree nothing fails in the explored space\n",
          verdict_name(result), verdict_name(unreduced));
    } else {
      std::printf("cross-validation OK: both engines report %s\n",
                  verdict_name(result));
    }
  }

  if (result.certified()) {
    std::printf("certified: all %llu schedules pass%s\n",
                static_cast<unsigned long long>(st.schedules),
                symmetry.active() ? " (up to reader permutation)" : "");
  } else {
    std::printf(
        "BOUNDED, NOT CERTIFIED: exploration truncated (%s%s%s); clean "
        "within the bound, but unexplored schedules remain\n",
        st.exhausted ? "" : "max-schedules reached",
        (!st.exhausted && st.depth_limited) ? ", " : "",
        st.depth_limited ? "race reversal beyond depth bound" : "");
  }
  return 0;
}
