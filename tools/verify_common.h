// Shared machinery of the verification drivers (verify_fuzz,
// verify_dpor): the implementation factory, the replayable-artifact
// writer, the mutex-shared LiveState the watchdog reads, and the
// watchdog itself. One copy, so a hang artifact looks the same whether
// the run that wedged was a random fuzz iteration or a DPOR-explored
// schedule.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "baselines/afek_snapshot.h"
#include "baselines/double_collect.h"
#include "baselines/mutex_snapshot.h"
#include "baselines/seqlock_snapshot.h"
#include "baselines/unbounded_helping.h"
#include "core/composite_register.h"
#include "lin/dump.h"
#include "lin/history.h"
#include "net/net_cell.h"
#include "theory/theory_cell.h"

namespace compreg::tools {

constexpr int kExitViolation = 1;
constexpr int kExitWatchdog = 2;
constexpr int kExitUsage = 64;

inline std::unique_ptr<core::Snapshot<std::uint64_t>> make_impl(
    const std::string& name, int c, int r) {
  if (name == "anderson") {
    return std::make_unique<core::CompositeRegister<std::uint64_t>>(c, r, 0);
  }
  if (name == "fullstack") {
    return std::make_unique<core::CompositeRegister<
        std::uint64_t, theory::TheoryCell, theory::TheoryCell>>(c, r, 0);
  }
  if (name == "afek") {
    return std::make_unique<baselines::AfekSnapshot<std::uint64_t>>(c, r, 0);
  }
  if (name == "unbounded") {
    return std::make_unique<baselines::UnboundedHelpingSnapshot<std::uint64_t>>(
        c, r, 0);
  }
  if (name == "doublecollect") {
    return std::make_unique<baselines::DoubleCollectSnapshot<std::uint64_t>>(
        c, r, 0);
  }
  if (name == "seqlock") {
    return std::make_unique<baselines::SeqlockSnapshot<std::uint64_t>>(c, r,
                                                                       0);
  }
  if (name == "mutex") {
    return std::make_unique<baselines::MutexSnapshot<std::uint64_t>>(c, r, 0);
  }
  if (name == "net") {
    // Caller must have a net::ScopedNetFabric installed; every base cell
    // of the construction becomes one quorum-replicated register on it.
    return std::make_unique<core::CompositeRegister<
        std::uint64_t, net::NetCell, net::NetCell>>(c, r, 0);
  }
  return nullptr;
}

// What the driver is doing *right now*, shared with the watchdog thread
// so a hang artifact can name the in-flight seed, the exact (derived)
// plans, and — under DPOR — the schedule prefix being replayed, not
// just the fixed flags.
struct LiveState {
  std::mutex mu;
  std::uint64_t seed = 0;
  std::string plan;      // process fault plan in force
  std::string net_plan;  // network fault plan in force
  std::string schedule;  // DPOR: schedule prefix of the in-flight run

  void set(std::uint64_t s, const std::string& p, const std::string& np,
           const std::string& sch = std::string()) {
    std::lock_guard<std::mutex> lock(mu);
    seed = s;
    plan = p;
    net_plan = np;
    schedule = sch;
  }
  void get(std::uint64_t& s, std::string& p, std::string& np,
           std::string& sch) {
    std::lock_guard<std::mutex> lock(mu);
    s = seed;
    p = plan;
    np = net_plan;
    sch = schedule;
  }
};

struct Artifact {
  std::string tool = "verify_fuzz";
  std::string path = "verify_fuzz_failure.txt";
  std::string config_line;
};

// Builds the single copy-pasteable command that replays one execution:
// the concrete plans (and, for DPOR, the exact schedule) ride along
// explicitly, so the replay does not depend on derivation flags.
using ReplayFn = std::function<std::string(
    std::uint64_t seed, const std::string& plan, const std::string& net_plan,
    const std::string& schedule)>;

// Writes a replayable failure artifact: the config, the failing seed,
// the plans and schedule in force, the replay command, and (when
// available) the offending history plus a parseable conformance dump.
inline void write_artifact(const Artifact& artifact, const char* kind,
                           std::uint64_t seed, const std::string& plan,
                           const std::string& net_plan,
                           const std::string& schedule,
                           const std::string& replay,
                           const std::string& detail,
                           const lin::History* history,
                           const std::string& conformance_dump =
                               std::string()) {
  std::ofstream out(artifact.path);
  if (!out) {
    std::fprintf(stderr, "cannot write artifact to %s\n",
                 artifact.path.c_str());
    return;
  }
  out << "# " << artifact.tool << " " << kind << "\n";
  out << "# " << artifact.config_line << "\n";
  out << "# seed " << seed << "\n";
  if (!plan.empty()) out << "# plan " << plan << "\n";
  if (!net_plan.empty()) out << "# net-plan " << net_plan << "\n";
  if (!schedule.empty()) out << "# schedule " << schedule << "\n";
  if (!replay.empty()) out << "# replay: " << replay << "\n";
  if (!detail.empty()) out << "# " << detail << "\n";
  if (history != nullptr) lin::dump_history(*history, out);
  if (!conformance_dump.empty()) {
    out << "# conformance report follows\n" << conformance_dump;
  }
  std::fprintf(stderr, "artifact written to %s\n", artifact.path.c_str());
}

// Hang detector: if the driver makes no progress for `timeout_sec`,
// dump an artifact naming the in-flight seed, plans and schedule, a
// copy-pasteable replay command, and the conformance analyzer's report
// of everything observed up to the hang. Then _Exit(2). _Exit skips
// destructors on purpose — a wedged simulator holds threads that can
// never be joined.
class Watchdog {
 public:
  Watchdog(unsigned timeout_sec, const Artifact& artifact,
           const std::atomic<std::uint64_t>& progress, LiveState& live,
           ReplayFn replay, std::function<std::string()> conformance_dump)
      : timeout_sec_(timeout_sec) {
    if (timeout_sec_ == 0) return;
    std::thread([this, &artifact, &progress, &live,
                 replay = std::move(replay),
                 conformance_dump = std::move(conformance_dump)] {
      std::uint64_t last = progress.load();
      auto last_change = std::chrono::steady_clock::now();
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const std::uint64_t now_progress = progress.load();
        if (now_progress != last) {
          last = now_progress;
          last_change = std::chrono::steady_clock::now();
          continue;
        }
        const auto stalled = std::chrono::steady_clock::now() - last_change;
        if (stalled >= std::chrono::seconds(timeout_sec_)) {
          std::uint64_t seed = 0;
          std::string plan;
          std::string net_plan;
          std::string schedule;
          live.get(seed, plan, net_plan, schedule);
          std::fprintf(stderr,
                       "WATCHDOG: no progress for %u s, run is hung "
                       "(seed %llu); exiting 2\n",
                       timeout_sec_,
                       static_cast<unsigned long long>(seed));
          // The hung execution's workload threads are parked in the
          // scheduler, so reading the analysis session here is quiet.
          const std::string dump =
              conformance_dump ? conformance_dump() : std::string();
          write_artifact(artifact, "watchdog timeout (hung run)", seed, plan,
                         net_plan, schedule,
                         replay(seed, plan, net_plan, schedule),
                         "the execution at this seed never completed; any "
                         "conformance report below reflects events up to "
                         "the hang",
                         nullptr, dump);
          std::fflush(stdout);
          std::fflush(stderr);
          std::_Exit(kExitWatchdog);
        }
      }
    }).detach();
  }

 private:
  unsigned timeout_sec_;
};

}  // namespace compreg::tools
